package etld

import (
	"hash/maphash"
	"sync"
)

// Parts is every derived view of one hostname, computed once: the
// normalized form, its public suffix, registrable domain (eTLD+1),
// top-level domain, second-level label and Figure 6 region.
type Parts struct {
	// Host is the normalized hostname. It doubles as the interned
	// canonical string: every lookup of an equal hostname returns this
	// exact string, so aggregation maps keyed by it share one backing
	// array instead of one copy per visit record.
	Host        string
	Suffix      string
	Registrable string
	TLD         string
	SecondLevel string
	Region      Region
}

// cacheShards bounds lock contention during parallel dataset passes; a
// power of two so the hash reduces with a mask.
const cacheShards = 64

// Cache memoizes hostname splitting. The analysis index feeds every
// hostname of a crawl through one Cache so each distinct host is
// normalized and split exactly once regardless of how many visits,
// resources, or experiments mention it. Safe for concurrent use.
type Cache struct {
	seed   maphash.Seed
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]*Parts
}

// NewCache returns an empty Cache.
func NewCache() *Cache {
	c := &Cache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*Parts)
	}
	return c
}

// Parts returns the memoized split of host, computing it on first sight.
// The first goroutine to store a host wins; later callers get its entry,
// so the returned pointer is stable for the cache's lifetime.
func (c *Cache) Parts(host string) *Parts {
	sh := &c.shards[maphash.String(c.seed, host)&(cacheShards-1)]
	sh.mu.RLock()
	p := sh.m[host]
	sh.mu.RUnlock()
	if p != nil {
		return p
	}
	norm := Normalize(host)
	p = &Parts{
		Host:        norm,
		Suffix:      PublicSuffix(norm),
		Registrable: RegistrableDomain(norm),
		TLD:         TLD(norm),
		SecondLevel: SecondLevelLabel(norm),
		Region:      RegionOf(norm),
	}
	sh.mu.Lock()
	if q, ok := sh.m[host]; ok {
		p = q
	} else {
		sh.m[host] = p
	}
	sh.mu.Unlock()
	return p
}

// Intern returns the canonical normalized form of host (see Parts.Host).
func (c *Cache) Intern(host string) string { return c.Parts(host).Host }

// Registrable is a memoized RegistrableDomain.
func (c *Cache) Registrable(host string) string { return c.Parts(host).Registrable }

// SecondLevel is a memoized SecondLevelLabel.
func (c *Cache) SecondLevel(host string) string { return c.Parts(host).SecondLevel }

// RegionOf is a memoized RegionOf.
func (c *Cache) RegionOf(host string) Region { return c.Parts(host).Region }

// SameSecondLevel is a memoized SameSecondLevel.
func (c *Cache) SameSecondLevel(a, b string) bool {
	sa, sb := c.SecondLevel(a), c.SecondLevel(b)
	return sa != "" && sa == sb
}

// Len returns the number of distinct hostnames cached.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
