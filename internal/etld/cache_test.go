package etld

import (
	"fmt"
	"sync"
	"testing"
)

// TestNormalizeFastPath: hosts already in normal form must come back as
// the identical string, without allocating.
func TestNormalizeFastPath(t *testing.T) {
	for _, host := range []string{
		"foo.com", "www.foo.co.uk", "a-b_c.example", "123.net", "x",
	} {
		if got := Normalize(host); got != host {
			t.Errorf("Normalize(%q) = %q, want unchanged", host, got)
		}
		if n := testing.AllocsPerRun(100, func() { Normalize(host) }); n != 0 {
			t.Errorf("Normalize(%q) allocates %.1f times per run, want 0", host, n)
		}
	}
	// The slow path still normalizes everything the fast path rejects.
	for in, want := range map[string]string{
		"WWW.Foo.COM":  "www.foo.com",
		" foo.com ":    "foo.com",
		"foo.com.":     "foo.com",
		"foo.com:8080": "foo.com",
		"":             "",
	} {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCacheMatchesDirectFunctions: the memoized split must agree with
// the underlying functions for every shape of host.
func TestCacheMatchesDirectFunctions(t *testing.T) {
	c := NewCache()
	hosts := []string{
		"www.foo.com", "foo.com", "ad.foo.co.uk", "WWW.BAR.DE",
		"foo.com.", "sub.deep.example.org", "com", "", "foo.com:443",
		"bar.msk.ru", "shop.com.br",
	}
	for _, h := range hosts {
		p := c.Parts(h)
		if p.Host != Normalize(h) {
			t.Errorf("Parts(%q).Host = %q, want %q", h, p.Host, Normalize(h))
		}
		if p.Registrable != RegistrableDomain(h) {
			t.Errorf("Parts(%q).Registrable = %q, want %q", h, p.Registrable, RegistrableDomain(h))
		}
		if p.Suffix != PublicSuffix(h) {
			t.Errorf("Parts(%q).Suffix = %q, want %q", h, p.Suffix, PublicSuffix(h))
		}
		if p.TLD != TLD(h) {
			t.Errorf("Parts(%q).TLD = %q, want %q", h, p.TLD, TLD(h))
		}
		if p.SecondLevel != SecondLevelLabel(h) {
			t.Errorf("Parts(%q).SecondLevel = %q, want %q", h, p.SecondLevel, SecondLevelLabel(h))
		}
		if p.Region != RegionOf(h) {
			t.Errorf("Parts(%q).Region = %v, want %v", h, p.Region, RegionOf(h))
		}
	}
	for _, h := range hosts {
		if a, b := c.SameSecondLevel(h, "foo.net"), SameSecondLevel(h, "foo.net"); a != b {
			t.Errorf("Cache.SameSecondLevel(%q, foo.net) = %v, want %v", h, a, b)
		}
	}
}

// TestCachePointerStability: repeated lookups return the same *Parts, so
// index maps share one interned string per distinct host.
func TestCachePointerStability(t *testing.T) {
	c := NewCache()
	p1 := c.Parts("www.foo.com")
	p2 := c.Parts("www.foo.com")
	if p1 != p2 {
		t.Error("second lookup returned a different *Parts")
	}
	if n := c.Len(); n != 1 {
		t.Errorf("cache Len = %d after one distinct host, want 1", n)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines under the
// race detector; every goroutine must observe consistent values.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h := fmt.Sprintf("host-%d.example.com", i%100)
				if got := c.Registrable(h); got != "example.com" {
					t.Errorf("Registrable(%q) = %q", h, got)
				}
				if !c.SameSecondLevel(h, "example.org") {
					t.Errorf("SameSecondLevel(%q, example.org) = false", h)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n != 101 {
		t.Errorf("cache Len = %d, want 101 distinct hosts", n)
	}
}
