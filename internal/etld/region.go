package etld

// Region is the coarse geographic grouping Figure 6 uses to break down
// questionable Topics API calls. The paper groups websites by top-level
// domain into .com, Japan (.jp), Russia (.ru), the European Union (the 30
// TLDs of EU countries where the GDPR is in force) and everything else.
type Region int

// The five regions of Figure 6, in the order the paper plots them.
const (
	RegionCom Region = iota
	RegionJapan
	RegionRussia
	RegionEU
	RegionOther
)

// Regions lists all regions in plotting order.
var Regions = []Region{RegionCom, RegionJapan, RegionRussia, RegionEU, RegionOther}

// String returns the axis label used in Figure 6.
func (r Region) String() string {
	switch r {
	case RegionCom:
		return ".com"
	case RegionJapan:
		return ".jp"
	case RegionRussia:
		return ".ru"
	case RegionEU:
		return "EU"
	default:
		return "Other"
	}
}

// euTLDs is the set of 30 TLDs the paper attributes to EU countries
// (the 27 ccTLDs plus .eu, and the alternative Greek and pan-EU forms).
var euTLDs = map[string]bool{
	"at": true, "be": true, "bg": true, "hr": true, "cy": true,
	"cz": true, "dk": true, "ee": true, "fi": true, "fr": true,
	"de": true, "gr": true, "el": true, "hu": true, "ie": true,
	"it": true, "lv": true, "lt": true, "lu": true, "mt": true,
	"nl": true, "pl": true, "pt": true, "ro": true, "sk": true,
	"si": true, "es": true, "se": true, "eu": true, "ευ": true,
}

// IsEUTLD reports whether tld belongs to the paper's 30-TLD EU set.
func IsEUTLD(tld string) bool { return euTLDs[tld] }

// RegionOf classifies a hostname into one of the five Figure 6 regions by
// its top-level domain.
func RegionOf(host string) Region {
	switch tld := TLD(host); {
	case tld == "com":
		return RegionCom
	case tld == "jp":
		return RegionJapan
	case tld == "ru":
		return RegionRussia
	case euTLDs[tld]:
		return RegionEU
	default:
		return RegionOther
	}
}
