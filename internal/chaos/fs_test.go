package chaos

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

func TestClassifyArtifact(t *testing.T) {
	cases := map[string]PathClass{
		"crawl.jsonl":                 PathJournal,
		"crawl.jsonl.gz":              PathJournal,
		"crawl.jsonl.shard-3":         PathJournal,
		"crawl.jsonl.ckpt":            PathManifest,
		"crawl.jsonl.gz.fidx":         PathFrameIndex,
		"crawl.jsonl.idx":             PathSnapshot,
		"crawl.jsonl.shard-0.status":  PathStatus,
		"report.json":                 PathReport,
		"notes.txt":                   PathOther,
		".crawl.jsonl.ckpt.tmp-91822": PathManifest,
		".crawl.jsonl.idx.tmp-x1":     PathSnapshot,
	}
	for path, want := range cases {
		if got := ClassifyArtifact(filepath.Join("/campaign", path)); got != want {
			t.Errorf("ClassifyArtifact(%s) = %s, want %s", path, got, want)
		}
	}
}

func TestNormalizeArtifactStripsTempDecoration(t *testing.T) {
	if got := normalizeArtifact("/d/.crawl.jsonl.ckpt.tmp-8231"); got != "crawl.jsonl.ckpt" {
		t.Errorf("normalized %q", got)
	}
	if got := normalizeArtifact("/d/crawl.jsonl"); got != "crawl.jsonl" {
		t.Errorf("normalized %q", got)
	}
}

// TestFaultFSDeterministic pins the injection contract: the same seed
// and the same per-artifact operation sequence draw the same faults,
// regardless of which run performs them.
func TestFaultFSDeterministic(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		fs := NewFaultFS(nil, FSProfile{
			Seed:  7,
			Rates: map[PathClass]FSFaultRates{PathManifest: {Sync: 0.5, Write: 0.2}},
		})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			err := durable.WriteFileAtomicFS(fs, filepath.Join(dir, "crawl.jsonl.ckpt"), func(w io.Writer) error {
				_, werr := w.Write([]byte("manifest state\n"))
				return werr
			})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at op %d", i)
		}
		if !a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("profile injected nothing at rate 0.5")
	}
	if faults == len(a) {
		t.Fatal("profile failed every operation at rate 0.5")
	}
}

func TestFaultFSClassificationAndChain(t *testing.T) {
	fs := NewFaultFS(nil, FSProfile{
		Seed:  1,
		Rates: map[PathClass]FSFaultRates{PathManifest: {Create: 1.0}},
	})
	_, err := fs.CreateTemp(t.TempDir(), ".crawl.jsonl.ckpt.tmp-*")
	if err == nil {
		t.Fatal("rate-1.0 create did not fault")
	}
	if !errors.Is(err, ErrInjectedFault) {
		t.Errorf("sentinel missing from %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("errno missing from %v", err)
	}
	if !durable.IsTransient(err) {
		t.Errorf("EIO blip not classified transient: %v", err)
	}
	if durable.IsDiskFull(err) {
		t.Errorf("EIO misclassified as disk-full: %v", err)
	}
}

func TestFaultFSShortWriteWritesPrefix(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, FSProfile{
		Seed:  3,
		Rates: map[PathClass]FSFaultRates{PathJournal: {ShortWrite: 1.0}},
	})
	f, err := fs.Create(filepath.Join(dir, "crawl.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if err == nil {
		t.Fatal("short write did not fail")
	}
	if n != len(payload)/2 {
		t.Fatalf("short write reported %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "crawl.jsonl"))
	if !bytes.Equal(data, payload[:n]) {
		t.Fatalf("on-disk prefix %q, want %q", data, payload[:n])
	}
}

// TestFaultFSENOSPCLatch exercises the simulated disk: the write
// crossing the budget is short and persistent ENOSPC follows, never
// classified transient.
func TestFaultFSENOSPCLatch(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	fs := NewFaultFS(nil, FSProfile{Seed: 1, ENOSPCAfter: 25, Metrics: reg})
	f, err := fs.Create(filepath.Join(dir, "crawl.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bytes.Repeat([]byte("x"), 20)); err != nil {
		t.Fatalf("write inside the budget failed: %v", err)
	}
	n, err := f.Write(bytes.Repeat([]byte("y"), 20))
	if err == nil {
		t.Fatal("budget-crossing write succeeded")
	}
	if !durable.IsDiskFull(err) {
		t.Fatalf("crossing write not ENOSPC: %v", err)
	}
	if n != 5 {
		t.Fatalf("crossing write stored %d bytes, want the 5 that fit", n)
	}
	if !fs.DiskFull() {
		t.Fatal("ENOSPC did not latch")
	}
	if durable.IsTransient(err) && !durable.IsDiskFull(err) {
		t.Fatal("ENOSPC classified retryable")
	}
	// Every subsequent write and sync fails persistently.
	if _, err := f.Write([]byte("z")); !durable.IsDiskFull(err) {
		t.Fatalf("post-latch write: %v", err)
	}
	if err := f.Sync(); !durable.IsDiskFull(err) {
		t.Fatalf("post-latch sync: %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "other.jsonl")); !durable.IsDiskFull(err) {
		t.Fatalf("post-latch create: %v", err)
	}
	if got := reg.Snapshot().Counter("storage_fault_injected_total", "op", "write", "class", "journal"); got == 0 {
		t.Error("injected ENOSPC not counted")
	}
}

// TestFaultFSRetryClears pins the retry contract end to end: a
// transient sync blip under a bounded RetryPolicy succeeds without
// surfacing, and the retry is counted.
func TestFaultFSRetryClears(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Sync rate 0.5: some syncs blip. Retry gives each store four tries;
	// P(4 consecutive blips) per store is 1/16, so most stores succeed —
	// assert that at least one store needed a retry and that retried
	// stores converge.
	fs := NewFaultFS(nil, FSProfile{
		Seed:    11,
		Rates:   map[PathClass]FSFaultRates{PathManifest: {Sync: 0.5}},
		Metrics: reg,
	})
	retry := durable.RetryPolicy{Attempts: 4, Metrics: reg}
	ok := 0
	for i := 0; i < 30; i++ {
		err := retry.Do("manifest", func() error {
			return durable.WriteFileAtomicFS(fs, filepath.Join(dir, "crawl.jsonl.ckpt"), func(w io.Writer) error {
				_, werr := w.Write([]byte("manifest state\n"))
				return werr
			})
		})
		if err == nil {
			ok++
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counter("storage_retry_total", "op", "manifest"); got == 0 {
		t.Fatal("no retry ever fired at sync rate 0.5")
	}
	if ok < 25 {
		t.Fatalf("only %d/30 stores converged under retry", ok)
	}
}

func TestFlipBitDeterministicSingleBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")
	orig := bytes.Repeat([]byte("abcdefgh"), 64)
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 42); err != nil {
		t.Fatal(err)
	}
	flipped, _ := os.ReadFile(path)
	diff := 0
	for i := range orig {
		if b := orig[i] ^ flipped[i]; b != 0 {
			diff++
			if b&(b-1) != 0 {
				t.Fatalf("byte %d changed by more than one bit: %08b", i, b)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
	// Determinism: same seed on the same content flips the same bit.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 42); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if !bytes.Equal(flipped, again) {
		t.Fatal("same seed flipped a different bit")
	}
	if err := FlipBit(filepath.Join(dir, "empty"), 1); err == nil {
		t.Fatal("flipping a missing file reported success")
	}
}

// TestFaultFSComposesWithCrashPlan arms both injectors on one journal:
// the crash plan kills the run at a byte offset while the fault FS
// blips syncs on the way there. Both must keep their classifications.
func TestFaultFSComposesWithCrashPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.jsonl")
	plan := CrashPlan{AfterRecords: 5}
	fs := NewFaultFS(nil, FSProfile{
		Seed:  9,
		Rates: map[PathClass]FSFaultRates{PathJournal: {Sync: 0.3}},
	})
	j, err := durable.Create(path, durable.Options{
		FS:           fs,
		Retry:        durable.RetryPolicy{Attempts: 4},
		BeforeAppend: plan.BeforeAppend(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Abort()
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		if lastErr = j.Append([]byte(`{"n":1}`)); lastErr == nil {
			_, lastErr = j.Sync()
		}
	}
	if lastErr == nil {
		t.Fatal("crash plan never fired")
	}
	if !IsCrash(lastErr) {
		t.Fatalf("want the injected crash, got %v", lastErr)
	}
	if errors.Is(lastErr, ErrInjectedFault) {
		t.Fatal("crash error polluted with storage-fault sentinel")
	}
}
