package chaos

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/obs"
)

// ErrInjectedFault marks every storage fault the FaultFS injects, the
// filesystem sibling of ErrInjectedCrash. Injected errors also carry
// the simulated errno (syscall.EIO, syscall.ENOSPC, ...) in their
// chain, so production classification — durable.IsDiskFull,
// errors.Is(err, syscall.EIO) — treats them exactly like the real thing.
var ErrInjectedFault = errors.New("chaos: injected storage fault")

// PathClass buckets artifact paths for per-class fault rates: a fault
// profile can, say, tear every manifest rename while leaving journal
// appends healthy.
type PathClass string

const (
	PathJournal    PathClass = "journal"     // dataset journals (.jsonl / .jsonl.gz / shard files)
	PathManifest   PathClass = "manifest"    // checkpoint manifests (.ckpt)
	PathFrameIndex PathClass = "frame-index" // sparse frame indexes (.fidx)
	PathSnapshot   PathClass = "snapshot"    // live analysis snapshots (.idx)
	PathStatus     PathClass = "status"      // shard status sidecars (.status)
	PathReport     PathClass = "report"      // report JSON artifacts (.json)
	PathOther      PathClass = "other"
)

// ClassifyArtifact maps a path to its fault class. Temp files from the
// atomic-write discipline (`.NAME.tmp-XXXX`) classify as their target
// NAME, so a "manifest write" fault fires on the temp the manifest is
// staged through.
func ClassifyArtifact(path string) PathClass {
	base := normalizeArtifact(path)
	switch {
	case strings.HasSuffix(base, ".ckpt"):
		return PathManifest
	case strings.HasSuffix(base, ".fidx"):
		return PathFrameIndex
	case strings.HasSuffix(base, ".idx"):
		return PathSnapshot
	case strings.HasSuffix(base, ".status"):
		return PathStatus
	case strings.HasSuffix(base, ".json"):
		return PathReport
	case strings.HasSuffix(base, ".jsonl"), strings.HasSuffix(base, ".gz"),
		strings.Contains(base, ".shard-"):
		return PathJournal
	default:
		return PathOther
	}
}

// normalizeArtifact strips the atomic-write temp decoration so the
// random temp suffix never feeds a fault decision (determinism) and
// temp files inherit their target's class.
func normalizeArtifact(path string) string {
	base := filepath.Base(path)
	if strings.HasPrefix(base, ".") {
		if i := strings.LastIndex(base, ".tmp-"); i > 0 {
			base = base[1:i]
		}
	}
	return base
}

// FSFaultRates are per-operation fault probabilities for one path
// class, each in [0,1]. Write and ShortWrite share one draw per Write
// call (ShortWrite wins ties), so their sum should stay ≤ 1.
type FSFaultRates struct {
	// Create faults file creation (ENOENT-style transient EIO).
	Create float64
	// Write faults a write call with a transient EIO, nothing written.
	Write float64
	// ShortWrite writes a prefix of the buffer, then fails with EIO.
	ShortWrite float64
	// Sync faults fsync with a transient EIO (data in page cache,
	// durability not established).
	Sync float64
	// Rename faults the atomic replace with a transient EIO; the temp
	// file survives, the target is untouched.
	Rename float64
	// Read faults whole-file reads (manifest/index loads).
	Read float64
	// SyncDir faults the directory fsync with a real (non-benign) EIO.
	SyncDir float64
}

// UniformFSRates gives every operation of a class the same fault rate.
func UniformFSRates(rate float64) FSFaultRates {
	return FSFaultRates{Create: rate, Write: rate, ShortWrite: rate, Sync: rate, Rename: rate, Read: rate, SyncDir: rate}
}

// UniformFSProfile faults every artifact class at the same per-op rate
// — the profile behind topics-crawl -storage-chaos. An enospcAfter > 0
// additionally caps the simulated disk.
func UniformFSProfile(seed uint64, rate float64, enospcAfter int64, reg *obs.Registry) FSProfile {
	rates := make(map[PathClass]FSFaultRates, 7)
	for _, c := range []PathClass{PathJournal, PathManifest, PathFrameIndex,
		PathSnapshot, PathStatus, PathReport, PathOther} {
		rates[c] = UniformFSRates(rate)
	}
	return FSProfile{Seed: seed, Rates: rates, ENOSPCAfter: enospcAfter, Metrics: reg}
}

// FSProfile configures a FaultFS: seeded per-class fault rates plus an
// optional disk-capacity budget. The zero value injects nothing.
type FSProfile struct {
	// Seed drives every fault decision; same seed + same operation
	// sequence = same faults.
	Seed uint64
	// Rates maps path classes to their fault rates. Classes absent
	// from the map never fault.
	Rates map[PathClass]FSFaultRates
	// ENOSPCAfter, when > 0, is the byte budget of the simulated disk:
	// the write crossing it is short, and every write after it fails
	// with ENOSPC persistently — the fail-fast (never retried) storage
	// condition.
	ENOSPCAfter int64
	// Metrics, if set, counts injected faults as
	// storage_fault_injected_total{op,class}.
	Metrics *obs.Registry
}

// FaultFS wraps a durable.FS with deterministic fault injection. Fault
// decisions are pure functions of (seed, artifact base name, operation,
// per-file operation sequence number), so single-writer artifact
// streams draw identical faults run over run regardless of scheduling.
type FaultFS struct {
	inner durable.FS
	prof  FSProfile

	mu      sync.Mutex
	seq     map[string]uint64
	written int64
	full    bool
}

// NewFaultFS wraps inner (nil = the production OS filesystem) with the
// given fault profile.
func NewFaultFS(inner durable.FS, prof FSProfile) *FaultFS {
	if inner == nil {
		inner = durable.OS
	}
	return &FaultFS{inner: inner, prof: prof, seq: make(map[string]uint64)}
}

// DiskFull reports whether the ENOSPC budget has been exhausted.
func (f *FaultFS) DiskFull() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.full
}

// FSError is one injected storage fault. Unwrap exposes both the
// ErrInjectedFault sentinel and the simulated errno.
type FSError struct {
	Op    string
	Path  string
	Class PathClass
	Errno error
	// Retryable marks transient faults (EIO blips, short writes); a
	// bounded retry may clear them. ENOSPC is never retryable.
	Retryable bool
}

func (e *FSError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault on %s (%s): %v", e.Op, e.Path, e.Class, e.Errno)
}

func (e *FSError) Unwrap() []error { return []error{ErrInjectedFault, e.Errno} }

// Transient implements the durable retry classification.
func (e *FSError) Transient() bool { return e.Retryable }

// draw returns a deterministic uniform [0,1) variate for one operation
// on one artifact. The per-(artifact,op) sequence counter makes the
// n-th sync of a manifest draw the same value in every run; the mutex
// only guards the counter map, never the decision.
func (f *FaultFS) draw(op, path string) float64 {
	key := normalizeArtifact(path) + "|" + op
	f.mu.Lock()
	n := f.seq[key]
	f.seq[key] = n + 1
	f.mu.Unlock()
	rng := rand.New(rand.NewPCG(f.prof.Seed, hash64("fsop", key, strconv.FormatUint(n, 16))))
	return rng.Float64()
}

func (f *FaultFS) rates(path string) FSFaultRates {
	return f.prof.Rates[ClassifyArtifact(path)]
}

func (f *FaultFS) fail(op, path string, errno error, retryable bool) error {
	f.prof.Metrics.Add("storage_fault_injected_total", 1,
		"op", op, "class", string(ClassifyArtifact(path)))
	return &FSError{Op: op, Path: path, Class: ClassifyArtifact(path), Errno: errno, Retryable: retryable}
}

// reserve charges n bytes against the ENOSPC budget, returning how many
// fit. Crossing the budget latches the disk full: every later write
// fails persistently until the campaign is resumed on a fresh FS.
func (f *FaultFS) reserve(n int) (int, bool) {
	if f.prof.ENOSPCAfter <= 0 {
		return n, true
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.full {
		return 0, false
	}
	room := f.prof.ENOSPCAfter - f.written
	if int64(n) <= room {
		f.written += int64(n)
		return n, true
	}
	f.full = true
	if room < 0 {
		room = 0
	}
	f.written = f.prof.ENOSPCAfter
	return int(room), false
}

func (f *FaultFS) Create(path string) (durable.File, error) {
	if f.DiskFull() {
		return nil, f.fail("create", path, syscall.ENOSPC, false)
	}
	if f.draw("create", path) < f.rates(path).Create {
		return nil, f.fail("create", path, syscall.EIO, true)
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: path}, nil
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (durable.File, error) {
	file, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: path}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (durable.File, error) {
	proxy := filepath.Join(dir, pattern)
	if f.DiskFull() {
		return nil, f.fail("create", proxy, syscall.ENOSPC, false)
	}
	if f.draw("create", proxy) < f.rates(proxy).Create {
		return nil, f.fail("create", proxy, syscall.EIO, true)
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: file.Name()}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.DiskFull() {
		return f.fail("rename", newpath, syscall.ENOSPC, false)
	}
	if f.draw("rename", newpath) < f.rates(newpath).Rename {
		return f.fail("rename", newpath, syscall.EIO, true)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error { return f.inner.Remove(path) }

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if f.draw("read", path) < f.rates(path).Read {
		return nil, f.fail("read", path, syscall.EIO, true)
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.draw("syncdir", dir) < f.rates(dir).SyncDir {
		return f.fail("syncdir", dir, syscall.EIO, true)
	}
	return f.inner.SyncDir(dir)
}

// faultFile interposes write/sync faults on one open artifact file.
type faultFile struct {
	durable.File
	fs   *FaultFS
	path string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	rates := ff.fs.rates(ff.path)
	x := ff.fs.draw("write", ff.path)
	switch {
	case x < rates.ShortWrite:
		n := len(p) / 2
		if n > 0 {
			if m, err := ff.File.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, ff.fs.fail("write", ff.path, syscall.EIO, true)
	case x < rates.ShortWrite+rates.Write:
		return 0, ff.fs.fail("write", ff.path, syscall.EIO, true)
	}
	n, ok := ff.fs.reserve(len(p))
	if !ok {
		var m int
		var err error
		if n > 0 {
			if m, err = ff.File.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return m, ff.fs.fail("write", ff.path, syscall.ENOSPC, false)
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.DiskFull() {
		return ff.fs.fail("sync", ff.path, syscall.ENOSPC, false)
	}
	if ff.fs.draw("sync", ff.path) < ff.fs.rates(ff.path).Sync {
		return ff.fs.fail("sync", ff.path, syscall.EIO, true)
	}
	return ff.File.Sync()
}

// FlipBit deterministically flips one bit of the file at path — the
// post-crash bit-rot injector the fsck matrix feeds on. The offset is a
// pure function of (seed, base name, file size). Corrupting the file
// in place is the whole point, so this bypasses the atomic-write
// discipline on purpose.
func FlipBit(path string, seed uint64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: flip bit: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("chaos: flip bit: %s is empty", path)
	}
	rng := rand.New(rand.NewPCG(seed, hash64("flipbit", filepath.Base(path), strconv.Itoa(len(data)))))
	off := rng.IntN(len(data))
	data[off] ^= 1 << uint(rng.IntN(8))
	//topicslint:ignore atomicwrite deliberate corruption injector: tearing the artifact is the point
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("chaos: flip bit: %w", err)
	}
	return nil
}
