package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Enabled:            true,
		Seed:               42,
		HardDownRate:       0.05,
		FlakyRate:          0.4,
		FaultRate:          0.5,
		LatencyRate:        0.3,
		MaxLatency:         45 * time.Second,
		TimeoutAfter:       30 * time.Second,
		HTTP5xxWeight:      0.4,
		ResetWeight:        0.4,
		TruncateWeight:     0.2,
		WellKnownFlakyRate: 0.3,
		WellKnownFaultRate: 0.8,
	}
}

func TestDecideDeterministic(t *testing.T) {
	cfg := testConfig()
	for i := 0; i < 200; i++ {
		host := fmt.Sprintf("site-%d.example", i)
		d1 := cfg.Decide(host, "/", "2024-03-30T06:00:00Z", "0")
		d2 := cfg.Decide(host, "/", "2024-03-30T06:00:00Z", "0")
		if d1 != d2 {
			t.Fatalf("decision for %s not deterministic: %+v vs %+v", host, d1, d2)
		}
	}
}

func TestDecideKeysOnCoordinates(t *testing.T) {
	cfg := testConfig()
	// Find a flaky, not hard-down host and show that time and attempt
	// redraw the coin while repetition does not.
	varied := false
	for i := 0; i < 500 && !varied; i++ {
		host := fmt.Sprintf("flaky-%d.example", i)
		p := cfg.ProfileFor(host)
		if !p.Flaky || p.HardDown {
			continue
		}
		base := cfg.Decide(host, "/", "t0", "0")
		if cfg.Decide(host, "/", "t1", "0") != base || cfg.Decide(host, "/", "t0", "1") != base {
			varied = true
		}
	}
	if !varied {
		t.Error("no flaky host's decision ever varied with time or attempt")
	}
}

func TestHardDownHostsAlwaysRefused(t *testing.T) {
	cfg := testConfig()
	found := 0
	for i := 0; i < 500; i++ {
		host := fmt.Sprintf("down-%d.example", i)
		if !cfg.ProfileFor(host).HardDown {
			continue
		}
		found++
		for attempt := 0; attempt < 5; attempt++ {
			d := cfg.Decide(host, "/", "t", fmt.Sprint(attempt))
			if d.Class != ClassRefused {
				t.Fatalf("hard-down host %s attempt %d: %+v", host, attempt, d)
			}
		}
	}
	if found == 0 {
		t.Error("no hard-down hosts at a 5% rate over 500 hosts")
	}
}

func TestDisabledConfigInjectsNothing(t *testing.T) {
	cfg := testConfig()
	cfg.Enabled = false
	for i := 0; i < 100; i++ {
		if d := cfg.Decide(fmt.Sprintf("h%d.example", i), "/", "t", "0"); d != (Decision{}) {
			t.Fatalf("disabled config decided %+v", d)
		}
	}
}

func TestFaultMixCoversEveryClass(t *testing.T) {
	cfg := testConfig()
	seen := map[Class]int{}
	for i := 0; i < 3000; i++ {
		d := cfg.Decide(fmt.Sprintf("host-%d.example", i), "/", "t", "0")
		seen[d.Class]++
	}
	for _, c := range []Class{ClassNone, ClassTimeout, ClassRefused, ClassReset, ClassHTTP5xx, ClassTruncated} {
		if seen[c] == 0 {
			t.Errorf("class %q never drawn: %v", c, seen)
		}
	}
	if seen[ClassNone] < seen[ClassReset] {
		t.Errorf("fault-free should dominate: %v", seen)
	}
}

func TestWellKnownFlakiness(t *testing.T) {
	cfg := testConfig()
	cfg.FlakyRate = 0 // isolate the well-known profile
	cfg.LatencyRate = 0
	faults := 0
	for i := 0; i < 1000; i++ {
		host := fmt.Sprintf("platform-%d.example", i)
		p := cfg.ProfileFor(host)
		if p.HardDown || !p.WellKnownFlaky {
			continue
		}
		if d := cfg.Decide(host, "/", "t", "0"); d.Class != ClassNone {
			t.Fatalf("non-well-known path faulted on %s: %+v", host, d)
		}
		if d := cfg.Decide(host, wellKnownPath, "t", "0"); d.Class != ClassNone {
			faults++
		}
	}
	if faults == 0 {
		t.Error("flaky well-known endpoints never faulted")
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func okTransport(body string) http.RoundTripper {
	return roundTripFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: 200,
			Body:       io.NopCloser(strings.NewReader(body)),
			Header:     http.Header{},
			Request:    r,
		}, nil
	})
}

func TestInjectorFaults(t *testing.T) {
	in := NewInjector(testConfig(), okTransport("hello world, a longer body"))
	classes := map[Class]int{}
	for i := 0; i < 2000; i++ {
		req := httptest.NewRequest("GET", fmt.Sprintf("http://host-%d.example/", i), nil)
		resp, err := in.RoundTrip(req)
		switch {
		case err != nil:
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("untyped injected error: %v", err)
			}
			classes[ce.Class]++
		case resp.StatusCode >= 500:
			classes[ClassHTTP5xx]++
			resp.Body.Close()
		default:
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				if Classify(rerr) != ClassTruncated {
					t.Fatalf("unexpected body error: %v", rerr)
				}
				if len(body) >= len("hello world, a longer body") {
					t.Fatal("truncated body not actually shorter")
				}
				classes[ClassTruncated]++
			}
		}
	}
	for _, c := range []Class{ClassTimeout, ClassRefused, ClassReset, ClassHTTP5xx, ClassTruncated} {
		if classes[c] == 0 {
			t.Errorf("injector never produced %q: %v", c, classes)
		}
	}
	snap := in.Stats().Snapshot()
	if snap.Requests != 2000 || snap.InjectedTotal() == 0 {
		t.Errorf("stats: %+v", snap)
	}
	if snap.String() == "" {
		t.Error("empty stats string")
	}
}

func TestHandlerFaultsOverTCP(t *testing.T) {
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "a reasonably sized backend response body")
	})
	h := NewHandler(testConfig(), backend)
	srv := httptest.NewServer(h)
	defer srv.Close()

	classes := map[Class]int{}
	for i := 0; i < 600; i++ {
		req, _ := http.NewRequest("GET", srv.URL+"/", nil)
		req.Host = fmt.Sprintf("host-%d.example", i)
		resp, err := srv.Client().Do(req)
		if err != nil {
			classes[ClassReset]++ // aborted connection
			continue
		}
		if resp.StatusCode >= 500 {
			classes[ClassHTTP5xx]++
			resp.Body.Close()
			continue
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			classes[ClassTruncated]++
		}
	}
	if classes[ClassReset] == 0 || classes[ClassHTTP5xx] == 0 || classes[ClassTruncated] == 0 {
		t.Errorf("handler fault mix incomplete: %v", classes)
	}
	if h.Stats().Snapshot().InjectedTotal() == 0 {
		t.Error("handler stats empty")
	}
}

func TestNumClassesTracksClasses(t *testing.T) {
	if numClasses != len(Classes) {
		t.Fatalf("numClasses = %d, len(Classes) = %d", numClasses, len(Classes))
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{&Error{Class: ClassReset, Host: "x"}, ClassReset},
		{fmt.Errorf("wrapping: %w", &Error{Class: ClassTruncated, Host: "x"}), ClassTruncated},
		{&Error{Class: ClassTimeout, Host: "x"}, ClassTimeout},
		{errors.New("dial tcp 1.2.3.4:80: connection refused"), ClassRefused},
		{errors.New("lookup nope.example: no such host"), ClassDNS},
		{errors.New("read tcp: connection reset by peer"), ClassReset},
		{errors.New("browser: loading x: status 502"), ClassHTTP5xx},
		{errors.New("reading body: unexpected EOF"), ClassTruncated},
		{errors.New("something else entirely"), ClassOther},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	if !Retryable(ClassTimeout) || !Retryable(ClassHTTP5xx) {
		t.Error("transient classes must be retryable")
	}
	if Retryable(ClassRefused) || Retryable(ClassDNS) || Retryable(ClassCircuitOpen) {
		t.Error("permanent classes must not be retryable")
	}
}
