package chaos

import (
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/netmeasure/topicscope/internal/etld"
)

// Injector is a client-side http.RoundTripper that applies the fault
// profile in front of any transport — the in-process webserver
// transport or a real TCP/TLS one — so the same chaos configuration
// works for every crawl mode.
type Injector struct {
	cfg   Config
	next  http.RoundTripper
	stats Stats
}

// NewInjector wraps a transport with fault injection. A nil next uses
// http.DefaultTransport.
func NewInjector(cfg Config, next http.RoundTripper) *Injector {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Injector{cfg: cfg, next: next}
}

// Stats exposes the injection counters.
func (in *Injector) Stats() *Stats { return &in.stats }

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	if !in.cfg.Enabled {
		return in.next.RoundTrip(req)
	}
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	host := normalizeHost(requestHost(req))
	d := in.cfg.Decide(host, req.URL.Path,
		req.Header.Get(VirtualTimeHeader), req.Header.Get(AttemptHeader))
	in.stats.observe(d)
	switch d.Class {
	case ClassNone:
		resp, err := in.next.RoundTrip(req)
		if err == nil && d.Latency > 0 {
			if resp.Header == nil {
				resp.Header = make(http.Header)
			}
			resp.Header.Set(LatencyHeader, strconv.FormatInt(int64(d.Latency), 10))
		}
		return resp, err
	case ClassHTTP5xx:
		return synthesize5xx(req, d.Status), nil
	case ClassTruncated:
		resp, err := in.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = truncateBody(resp.Body, host)
		return resp, nil
	default:
		return nil, &Error{Class: d.Class, Host: host, Latency: d.Latency}
	}
}

func requestHost(req *http.Request) string {
	if req.URL != nil && req.URL.Host != "" {
		return req.URL.Host
	}
	return req.Host
}

// normalizeHost canonicalizes a request host the same way every other
// package does: through etld.Normalize (lowercase, port and
// trailing-dot strip), so per-host fault profiles match regardless of
// how the host was spelled on the wire.
func normalizeHost(host string) string {
	return etld.Normalize(host)
}

// synthesize5xx builds an injected server-error response without
// touching the backend, like a dying origin behind a healthy LB.
func synthesize5xx(req *http.Request, status int) *http.Response {
	if status == 0 {
		status = http.StatusInternalServerError
	}
	body := "chaos: injected " + strconv.Itoa(status) + "\n"
	return &http.Response{
		StatusCode:    status,
		Status:        strconv.Itoa(status) + " " + http.StatusText(status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody wraps a response body so that reading it yields roughly
// half the payload and then a truncation error, like a connection cut
// mid-transfer.
func truncateBody(body io.ReadCloser, host string) io.ReadCloser {
	data, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		data = nil
	}
	return &truncatedReader{data: data[:len(data)/2], host: host}
}

type truncatedReader struct {
	data []byte
	off  int
	host string
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.off >= len(t.data) {
		return 0, &Error{Class: ClassTruncated, Host: t.host}
	}
	n := copy(p, t.data[t.off:])
	t.off += n
	return n, nil
}

func (t *truncatedReader) Close() error { return nil }

// Handler is the server-side counterpart of Injector: it wraps the
// synthetic web's handler so a topics-serve instance misbehaves over
// real TCP. Decisions come from the same pure function, so a crawl
// against a chaotic server matches one with a client-side injector of
// the same seed for every fault class a server can express (connection
// drops stand in for refused/timeout).
type Handler struct {
	cfg   Config
	next  http.Handler
	stats Stats
}

// NewHandler wraps an http.Handler with fault injection.
func NewHandler(cfg Config, next http.Handler) *Handler {
	return &Handler{cfg: cfg, next: next}
}

// Stats exposes the injection counters.
func (h *Handler) Stats() *Stats { return &h.stats }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !h.cfg.Enabled {
		h.next.ServeHTTP(w, r)
		return
	}
	d := h.cfg.Decide(normalizeHost(r.Host), r.URL.Path,
		r.Header.Get(VirtualTimeHeader), r.Header.Get(AttemptHeader))
	h.stats.observe(d)
	switch d.Class {
	case ClassNone:
		if d.Latency > 0 {
			w.Header().Set(LatencyHeader, strconv.FormatInt(int64(d.Latency), 10))
		}
		h.next.ServeHTTP(w, r)
	case ClassHTTP5xx:
		http.Error(w, "chaos: injected fault", d.Status)
	case ClassTruncated:
		h.truncate(w, r)
	default:
		// Refused, reset and timeout all collapse to an aborted
		// connection over real TCP.
		panic(http.ErrAbortHandler)
	}
}

// truncate renders the full response, then sends only half of it under
// the full Content-Length, so the client fails mid-read.
func (h *Handler) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &recordingWriter{header: make(http.Header)}
	h.next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(rec.body)))
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(rec.body[:len(rec.body)/2]) //nolint:errcheck // the point is a broken write
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// recordingWriter buffers a downstream response for truncation.
type recordingWriter struct {
	header http.Header
	body   []byte
	status int
}

func (r *recordingWriter) Header() http.Header { return r.header }

func (r *recordingWriter) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

func (r *recordingWriter) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}
