// Package chaos is a seeded, deterministic fault injector for the
// synthetic web: it reproduces the unreliable Internet the paper's
// crawler faced (§2.4: only 43,405 of 50,000 sites answered) by
// applying per-host failure profiles — hard-down hosts, flaky hosts
// with injected latency, 5xx responses, connection resets and
// truncated bodies, and flaky /.well-known attestation endpoints.
//
// Every decision is a pure function of (seed, host, path, virtual
// time, attempt), never of request arrival order, so a crawl with any
// worker count produces byte-identical datasets. The package also owns
// the crawl error taxonomy (timeout | refused | dns | reset | http5xx
// | truncated | circuit-open) that the resilience layer and the
// analysis pipeline share.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"
)

// Simulation plumbing headers the injector keys its decisions on. They
// mirror the browser's constants; chaos cannot import internal/browser
// (the browser imports chaos for the taxonomy).
const (
	// VirtualTimeHeader carries the visit's virtual timestamp; a retry
	// after backoff advances it, redrawing the fault coin.
	VirtualTimeHeader = "X-Topicscope-Time"
	// AttemptHeader carries the fetch attempt number (0-based); a
	// same-instant retry redraws the fault coin through it.
	AttemptHeader = "X-Topicscope-Attempt"
	// LatencyHeader is stamped on responses that had latency injected
	// but still succeeded (sub-timeout delay), carrying the delay in
	// nanoseconds. The browser's observability layer charges it to the
	// fetch span, so trace durations reflect the simulated weather.
	LatencyHeader = "X-Topicscope-Chaos-Latency"
	// wellKnownPath is the attestation endpoint, which gets its own
	// flakiness profile (mirrors attestation.WellKnownPath).
	wellKnownPath = "/.well-known/privacy-sandbox-attestations.json"
)

// Class is one entry of the structured crawl error taxonomy.
type Class string

// The error taxonomy. ClassNone marks a fault-free request; ClassOther
// collects errors outside the taxonomy (context cancellation, parse
// failures, ...).
const (
	ClassNone        Class = ""
	ClassTimeout     Class = "timeout"
	ClassRefused     Class = "refused"
	ClassDNS         Class = "dns"
	ClassReset       Class = "reset"
	ClassHTTP5xx     Class = "http5xx"
	ClassTruncated   Class = "truncated"
	ClassCircuitOpen Class = "circuit-open"
	// ClassDeadline marks a visit abandoned by the crawler's per-visit
	// deadline watchdog: the stage-clock budget ran out mid-visit.
	ClassDeadline Class = "deadline_exceeded"
	// ClassAborted marks a visit abandoned by a graceful drain
	// (SIGTERM / context cancellation), recorded as partial.
	ClassAborted Class = "aborted"
	ClassOther   Class = "other"
)

// Classes lists every non-empty class in rendering order.
var Classes = []Class{
	ClassTimeout, ClassRefused, ClassDNS, ClassReset,
	ClassHTTP5xx, ClassTruncated, ClassCircuitOpen,
	ClassDeadline, ClassAborted, ClassOther,
}

// numClasses must track len(Classes); the Stats array needs a constant.
const numClasses = 10

// Retryable reports whether a failure class is worth retrying:
// transient faults are, while DNS failures, refused connections
// (hard-down hosts) and an open circuit are not.
func Retryable(c Class) bool {
	switch c {
	case ClassTimeout, ClassReset, ClassHTTP5xx, ClassTruncated:
		return true
	}
	return false
}

// Error is an injected (or synthesized) failure carrying its taxonomy
// class.
type Error struct {
	Class Class
	Host  string
	// Latency is the injected delay that caused a timeout, when any.
	Latency time.Duration
}

// Error renders the failure the way the equivalent network error would.
func (e *Error) Error() string {
	switch e.Class {
	case ClassTimeout:
		return fmt.Sprintf("read tcp %s:80: i/o timeout (injected latency %s)", e.Host, e.Latency.Round(time.Millisecond))
	case ClassRefused:
		return fmt.Sprintf("dial tcp %s:80: connection refused", e.Host)
	case ClassReset:
		return fmt.Sprintf("read tcp %s:80: connection reset by peer", e.Host)
	case ClassTruncated:
		return fmt.Sprintf("reading %s: unexpected EOF (truncated body)", e.Host)
	case ClassCircuitOpen:
		return fmt.Sprintf("%s: circuit breaker open", e.Host)
	case ClassDeadline:
		return fmt.Sprintf("%s: visit deadline exceeded (budget %s)", e.Host, e.Latency.Round(time.Millisecond))
	case ClassAborted:
		return fmt.Sprintf("%s: visit aborted by drain", e.Host)
	default:
		return fmt.Sprintf("%s: injected %s", e.Host, e.Class)
	}
}

// Timeout implements net.Error-style timeout reporting.
func (e *Error) Timeout() bool { return e.Class == ClassTimeout }

// ErrorClass implements the classification interface Classify checks.
func (e *Error) ErrorClass() string { return string(e.Class) }

// Classify maps any crawl error onto the taxonomy. It prefers a typed
// classification (anything in the chain exposing ErrorClass() or
// Timeout()) and falls back to text matching for errors from the
// standard net stack.
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	if c := classifyChain(err); c != ClassOther {
		return c
	}
	return ClassifyText(err.Error())
}

// classifyChain walks the error chain looking for a typed class.
func classifyChain(err error) Class {
	for e := err; e != nil; e = unwrap(e) {
		if ec, ok := e.(interface{ ErrorClass() string }); ok {
			if c := Class(ec.ErrorClass()); known(c) {
				return c
			}
		}
		if te, ok := e.(interface{ Timeout() bool }); ok && te.Timeout() {
			return ClassTimeout
		}
	}
	return ClassOther
}

func unwrap(err error) error {
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		return u.Unwrap()
	default:
		return nil
	}
}

func known(c Class) bool {
	for _, k := range Classes {
		if c == k && c != ClassOther {
			return true
		}
	}
	return false
}

// ClassifyText classifies an error message, for datasets recorded
// before the taxonomy existed (or errors that lost their type over
// JSON).
func ClassifyText(msg string) Class {
	switch {
	case msg == "":
		return ClassNone
	case strings.Contains(msg, "circuit breaker"):
		return ClassCircuitOpen
	case strings.Contains(msg, "visit deadline exceeded"):
		return ClassDeadline
	case strings.Contains(msg, "aborted by drain"):
		return ClassAborted
	case strings.Contains(msg, "timeout") || strings.Contains(msg, "deadline exceeded"):
		return ClassTimeout
	case strings.Contains(msg, "connection refused"):
		return ClassRefused
	case strings.Contains(msg, "no such host"):
		return ClassDNS
	case strings.Contains(msg, "connection reset"):
		return ClassReset
	case strings.Contains(msg, "status 5"):
		return ClassHTTP5xx
	case strings.Contains(msg, "unexpected EOF") || strings.Contains(msg, "truncated"):
		return ClassTruncated
	default:
		return ClassOther
	}
}

// Config parameterises the injector. The zero value disables every
// fault; webworld.DefaultChaos returns the paper-calibrated profile.
type Config struct {
	// Enabled turns injection on; off, every request passes through.
	Enabled bool
	// Seed drives all fault decisions; independent of the world seed so
	// the same world can be crawled under different weather.
	Seed uint64

	// HardDownRate is the share of hosts that are completely down:
	// every connection is refused, retries never help.
	HardDownRate float64
	// FlakyRate is the share of hosts that fail intermittently.
	FlakyRate float64
	// FaultRate is the per-request probability that a flaky host
	// returns a 5xx, resets the connection or truncates the body.
	FaultRate float64
	// LatencyRate is the per-request probability that a flaky host
	// injects latency, drawn uniformly from (0, MaxLatency].
	LatencyRate float64
	// MaxLatency bounds injected latency; delays of TimeoutAfter or
	// more become timeout failures (the virtual clock never actually
	// sleeps).
	MaxLatency time.Duration
	// TimeoutAfter is the emulated client patience: injected latency at
	// or above it turns the request into a timeout.
	TimeoutAfter time.Duration

	// HTTP5xxWeight / ResetWeight / TruncateWeight mix the fault
	// classes of FaultRate (normalised internally).
	HTTP5xxWeight, ResetWeight, TruncateWeight float64

	// WellKnownFlakyRate is the share of hosts whose /.well-known
	// attestation endpoint is flaky even when the rest of the host is
	// healthy; WellKnownFaultRate is its per-request fault probability.
	WellKnownFlakyRate float64
	WellKnownFaultRate float64
}

// Profile is a host's deterministic failure disposition.
type Profile struct {
	HardDown       bool
	Flaky          bool
	WellKnownFlaky bool
}

// ProfileFor derives a host's profile from the chaos seed alone.
func (c Config) ProfileFor(host string) Profile {
	rng := rand.New(rand.NewPCG(c.Seed, hash64("host", host)))
	return Profile{
		HardDown:       rng.Float64() < c.HardDownRate,
		Flaky:          rng.Float64() < c.FlakyRate,
		WellKnownFlaky: rng.Float64() < c.WellKnownFlakyRate,
	}
}

// Decision is the fault verdict for one request.
type Decision struct {
	// Class is the injected failure; ClassNone passes the request
	// through.
	Class Class
	// Latency is the injected delay (also set on latency-caused
	// timeouts).
	Latency time.Duration
	// Status is the injected HTTP status for ClassHTTP5xx.
	Status int
}

// Decide computes the fault verdict for a request, a pure function of
// the configuration and the request coordinates — host, URL path, the
// virtual-time header value, and the attempt header value.
func (c Config) Decide(host, path, vtime, attempt string) Decision {
	if !c.Enabled {
		return Decision{}
	}
	p := c.ProfileFor(host)
	if p.HardDown {
		return Decision{Class: ClassRefused}
	}
	latencyRate, faultRate := 0.0, 0.0
	if p.Flaky {
		latencyRate, faultRate = c.LatencyRate, c.FaultRate
	}
	if p.WellKnownFlaky && path == wellKnownPath && c.WellKnownFaultRate > faultRate {
		faultRate = c.WellKnownFaultRate
	}
	if latencyRate == 0 && faultRate == 0 {
		return Decision{}
	}
	rng := rand.New(rand.NewPCG(c.Seed^0x5eedFa013, hash64("req", host, path, vtime, attempt)))
	// Fixed draw order keeps decisions stable across config tweaks that
	// do not touch the drawn quantity.
	if rng.Float64() < latencyRate {
		lat := time.Duration(rng.Float64() * float64(c.MaxLatency))
		if c.TimeoutAfter > 0 && lat >= c.TimeoutAfter {
			return Decision{Class: ClassTimeout, Latency: lat}
		}
		return Decision{Latency: lat}
	}
	if rng.Float64() >= faultRate {
		return Decision{}
	}
	total := c.HTTP5xxWeight + c.ResetWeight + c.TruncateWeight
	if total <= 0 {
		return Decision{Class: ClassReset}
	}
	x := rng.Float64() * total
	switch {
	case x < c.HTTP5xxWeight:
		statuses := [...]int{500, 502, 503}
		return Decision{Class: ClassHTTP5xx, Status: statuses[rng.IntN(len(statuses))]}
	case x < c.HTTP5xxWeight+c.ResetWeight:
		return Decision{Class: ClassReset}
	default:
		return Decision{Class: ClassTruncated}
	}
}

// hash64 folds strings into a 64-bit stream selector for the PCG.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Stats counts injector activity, safe for concurrent use.
type Stats struct {
	requests atomic.Int64
	delayed  atomic.Int64
	injected [numClasses]atomic.Int64
}

func classIndex(c Class) int {
	for i, k := range Classes {
		if k == c {
			return i
		}
	}
	return len(Classes) - 1 // ClassOther
}

func (s *Stats) observe(d Decision) {
	s.requests.Add(1)
	if d.Latency > 0 && d.Class == ClassNone {
		s.delayed.Add(1)
	}
	if d.Class != ClassNone {
		s.injected[classIndex(d.Class)].Add(1)
	}
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	// Requests is every request seen; Delayed had latency injected but
	// stayed under the timeout budget; Injected maps fault class to
	// count.
	Requests, Delayed int64
	Injected          map[Class]int64
}

// InjectedTotal sums all injected faults.
func (s StatsSnapshot) InjectedTotal() int64 {
	var n int64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// String renders a one-line summary in stable class order.
func (s StatsSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos requests=%d delayed=%d injected=%d", s.Requests, s.Delayed, s.InjectedTotal())
	for _, c := range Classes {
		if s.Injected[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, s.Injected[c])
		}
	}
	return b.String()
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	out := StatsSnapshot{
		Requests: s.requests.Load(),
		Delayed:  s.delayed.Load(),
		Injected: make(map[Class]int64, len(Classes)),
	}
	for i, c := range Classes {
		out.Injected[c] = s.injected[i].Load()
	}
	return out
}
