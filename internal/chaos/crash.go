package chaos

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// ErrInjectedCrash is the sentinel every crash injector returns (wrapped
// with position detail). A writer seeing it must treat the process as
// dead: the kill-and-resume harness stops the campaign at that instant
// and restarts from the on-disk state.
var ErrInjectedCrash = errors.New("chaos: injected crash")

// IsCrash reports whether an error chain contains an injected crash.
func IsCrash(err error) bool { return errors.Is(err, ErrInjectedCrash) }

// CrashPlan is a deterministic crashpoint on the durable write path:
// the process "dies" before appending record AfterRecords (0-based), or
// after AfterBytes raw bytes have reached the journal file — whichever
// hook is armed. Zero values disarm a dimension. The plan is pure
// configuration: the same plan against the same campaign crashes at the
// same byte every time, which is what lets the resume harness assert
// byte-identical final reports.
type CrashPlan struct {
	// AfterRecords, when > 0, crashes the append of record index
	// AfterRecords (so exactly AfterRecords records survive in the
	// journal's buffers; fewer may be committed).
	AfterRecords int64
	// AfterBytes, when > 0, tears the raw byte stream: the write that
	// crosses the threshold persists only partially and every later
	// write fails — simulating a kill -9 mid-write().
	AfterBytes int64
}

// BeforeAppend adapts the plan to durable.Options.BeforeAppend.
// Returns nil when AfterRecords is disarmed.
func (p CrashPlan) BeforeAppend() func(recordIndex int64) error {
	if p.AfterRecords <= 0 {
		return nil
	}
	return func(i int64) error {
		if i >= p.AfterRecords {
			return fmt.Errorf("%w before record %d", ErrInjectedCrash, i)
		}
		return nil
	}
}

// Wrap adapts the plan to durable.Options.Wrap. Returns nil when
// AfterBytes is disarmed.
func (p CrashPlan) Wrap() func(io.Writer) io.Writer {
	if p.AfterBytes <= 0 {
		return nil
	}
	return func(w io.Writer) io.Writer {
		return &crashWriter{w: w, remaining: p.AfterBytes}
	}
}

// crashWriter passes bytes through until the budget is spent; the
// crossing write is torn (a partial prefix is written, mimicking a
// mid-write kill) and everything after fails permanently.
type crashWriter struct {
	w         io.Writer
	remaining int64
	dead      atomic.Bool
}

func (cw *crashWriter) Write(p []byte) (int, error) {
	if cw.dead.Load() {
		return 0, fmt.Errorf("%w (writer already dead)", ErrInjectedCrash)
	}
	if int64(len(p)) <= cw.remaining {
		cw.remaining -= int64(len(p))
		return cw.w.Write(p)
	}
	cw.dead.Store(true)
	n := int(cw.remaining)
	cw.remaining = 0
	if n > 0 {
		if m, err := cw.w.Write(p[:n]); err != nil {
			return m, err
		}
	}
	return n, fmt.Errorf("%w after partial write of %d/%d bytes", ErrInjectedCrash, n, len(p))
}
