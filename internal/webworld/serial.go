package webworld

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/etld"
)

// worldSpec is the on-disk form of a world: provenance plus the full
// site list. The ad-platform catalog and CMP database are code-level
// constants, so they are not serialised; deserialisation rebuilds every
// index. Custom generator configs are not preserved — the spec exists so
// a crawl target can be inspected and served without regenerating.
type worldSpec struct {
	FormatVersion int     `json:"formatVersion"`
	Seed          uint64  `json:"seed"`
	NumSites      int     `json:"numSites"`
	Sites         []*Site `json:"sites"`
}

const specVersion = 1

// Save writes the world as JSON.
func (w *World) Save(out io.Writer) error {
	enc := json.NewEncoder(out)
	spec := worldSpec{
		FormatVersion: specVersion,
		Seed:          w.Cfg.Seed,
		NumSites:      len(w.Sites),
		Sites:         w.Sites,
	}
	if err := enc.Encode(&spec); err != nil {
		return fmt.Errorf("webworld: encoding spec: %w", err)
	}
	return nil
}

// Load reads a world spec and rebuilds a fully indexed World.
func Load(in io.Reader) (*World, error) {
	var spec worldSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return nil, fmt.Errorf("webworld: decoding spec: %w", err)
	}
	if spec.FormatVersion != specVersion {
		return nil, fmt.Errorf("webworld: unsupported spec version %d", spec.FormatVersion)
	}
	w := &World{
		Cfg:      Config{Seed: spec.Seed, NumSites: spec.NumSites}.withDefaults(),
		Catalog:  adcatalog.New(),
		byDomain: make(map[string]*Site, len(spec.Sites)*2),
		longTail: make(map[string]bool),
		cmpHosts: make(map[string]string, 16),
	}
	for _, c := range cmpdb.All() {
		w.cmpHosts[c.Domain] = c.Name
	}
	for i, s := range spec.Sites {
		if s == nil || s.Domain == "" {
			return nil, fmt.Errorf("webworld: spec site %d invalid", i)
		}
		if s.Rank != i+1 {
			return nil, fmt.Errorf("webworld: spec site %d has rank %d", i, s.Rank)
		}
		if _, dup := w.byDomain[s.Domain]; dup {
			return nil, fmt.Errorf("webworld: duplicate domain %q in spec", s.Domain)
		}
		if etld.RegionOf(s.Domain) != s.Region {
			return nil, fmt.Errorf("webworld: site %q region inconsistent", s.Domain)
		}
		w.Sites = append(w.Sites, s)
		w.byDomain[s.Domain] = s
		if s.RedirectTo != "" {
			w.byDomain[s.RedirectTo] = s
		}
		for _, h := range s.LongTail {
			w.longTail[h] = true
		}
	}
	return w, nil
}
