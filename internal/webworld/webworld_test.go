package webworld

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/netmeasure/topicscope/internal/etld"
)

// testWorld generates a moderately sized world once for the whole
// package test run.
var testWorld = Generate(Config{Seed: 7, NumSites: 8000})

func TestGenerateShape(t *testing.T) {
	w := testWorld
	if len(w.Sites) != 8000 {
		t.Fatalf("sites = %d", len(w.Sites))
	}
	st := w.Stats()
	t.Logf("world: %s", st)

	if frac := float64(st.Reachable) / float64(st.Sites); math.Abs(frac-0.868) > 0.02 {
		t.Errorf("reachable fraction %.3f, want ≈0.868 (paper: 43,405/50,000)", frac)
	}
	if frac := float64(st.WithBanner) / float64(st.Sites); frac < 0.45 || frac > 0.65 {
		t.Errorf("banner fraction %.3f out of plausible range", frac)
	}
	if frac := float64(st.GTMTopics) / float64(st.Sites); math.Abs(frac-0.62*0.27) > 0.03 {
		t.Errorf("GTM-topics fraction %.3f, want ≈%.3f", frac, 0.62*0.27)
	}
	if st.AdFree == 0 {
		t.Error("no ad-free sites generated")
	}
}

func TestDomainsUniqueAndRanked(t *testing.T) {
	w := testWorld
	seen := make(map[string]bool, len(w.Sites))
	for i, s := range w.Sites {
		if s.Rank != i+1 {
			t.Fatalf("rank %d at index %d", s.Rank, i)
		}
		if seen[s.Domain] {
			t.Errorf("duplicate site domain %q", s.Domain)
		}
		seen[s.Domain] = true
		if s.RedirectTo != "" {
			if seen[s.RedirectTo] {
				t.Errorf("sister domain %q collides", s.RedirectTo)
			}
			seen[s.RedirectTo] = true
		}
	}
}

func TestRegionConsistency(t *testing.T) {
	for _, s := range testWorld.Sites {
		if got := etld.RegionOf(s.Domain); got != s.Region {
			t.Errorf("site %s: stored region %v but TLD says %v", s.Domain, s.Region, got)
		}
	}
}

func TestRegionShares(t *testing.T) {
	st := testWorld.Stats()
	want := testWorld.Cfg.RegionShare
	for _, r := range etld.Regions {
		got := float64(st.ByRegion[r]) / float64(st.Sites)
		if math.Abs(got-want[r]) > 0.02 {
			t.Errorf("region %v share %.3f, want ≈%.3f", r, got, want[r])
		}
	}
}

func TestSisterDomainsDifferSecondLevel(t *testing.T) {
	n := 0
	for _, s := range testWorld.Sites {
		if s.RedirectTo == "" {
			continue
		}
		n++
		if etld.SameSecondLevel(s.Domain, s.RedirectTo) {
			t.Errorf("sister %q shares second-level label with %q", s.RedirectTo, s.Domain)
		}
		if got, ok := testWorld.SiteByDomain(s.RedirectTo); !ok || got != s {
			t.Errorf("sister %q does not resolve to its site", s.RedirectTo)
		}
		if s.EffectiveDomain() != s.RedirectTo {
			t.Errorf("EffectiveDomain = %q", s.EffectiveDomain())
		}
	}
	if n == 0 {
		t.Error("no redirecting sites generated")
	}
}

func TestRedirectsConcentrateOnAnomalousSites(t *testing.T) {
	// The §4 mismatch share is measured on anomalous calls: redirecting
	// sites must be much more frequent among GTM-topics sites.
	var anomalous, anomalousRedir, plain, plainRedir int
	for _, s := range testWorld.Sites {
		if s.GTMTopicsCall || s.OtherLibTopicsCall {
			anomalous++
			if s.RedirectTo != "" {
				anomalousRedir++
			}
		} else {
			plain++
			if s.RedirectTo != "" {
				plainRedir++
			}
		}
	}
	ra := float64(anomalousRedir) / float64(anomalous)
	rp := float64(plainRedir) / float64(plain)
	if math.Abs(ra-0.28) > 0.05 {
		t.Errorf("redirect rate among anomalous sites %.3f, want ≈0.28", ra)
	}
	if rp > 0.05 {
		t.Errorf("redirect rate among plain sites %.3f, want small", rp)
	}
}

func TestGatingRules(t *testing.T) {
	for _, s := range testWorld.Sites {
		if s.CMP != "" && !s.HasBanner {
			t.Errorf("site %s has CMP without banner", s.Domain)
		}
		if s.CMP != "" && !s.CMPMisconfigured && !s.Gated {
			t.Errorf("site %s: healthy CMP must gate", s.Domain)
		}
		if s.CMP != "" && s.CMPMisconfigured && s.Gated {
			t.Errorf("site %s: misconfigured CMP must not gate", s.Domain)
		}
		if !s.HasBanner && s.Gated {
			t.Errorf("site %s gated without banner", s.Domain)
		}
		if s.GTMTopicsCall && !s.HasGTM {
			t.Errorf("site %s: GTM call without GTM", s.Domain)
		}
		if s.GTMTopicsCall && s.OtherLibTopicsCall {
			t.Errorf("site %s: both anomaly sources set", s.Domain)
		}
	}
}

func TestDistillerySitePresent(t *testing.T) {
	s, ok := testWorld.SiteByDomain("distillery.com")
	if !ok {
		t.Fatal("distillery.com not in world")
	}
	if !s.Reachable || !s.HasBanner || s.ObscureBanner || s.Language != "en" {
		t.Errorf("distillery.com must be crawlable and acceptable: %+v", s)
	}
	if len(s.Platforms) != 1 || s.Platforms[0] != "distillery.com" {
		t.Errorf("distillery.com platforms = %v", s.Platforms)
	}
	if testWorld.Classify("distillery.com") != HostSite {
		t.Error("distillery.com should classify as a site")
	}
}

func TestPlatformPresenceOrdering(t *testing.T) {
	// Figure 2's ordering: google-analytics > doubleclick > bing >
	// rubiconproject ... criteo; check the big separations hold.
	count := func(domain string) int {
		n := 0
		for _, s := range testWorld.Sites {
			for _, p := range s.Platforms {
				if p == domain {
					n++
				}
			}
		}
		return n
	}
	ga, dc, bing, rubicon, criteo, cpx := count("google-analytics.com"),
		count("doubleclick.net"), count("bing.com"),
		count("rubiconproject.com"), count("criteo.com"), count("cpx.to")
	if !(ga > dc && dc > bing && bing > rubicon && rubicon > cpx) {
		t.Errorf("presence ordering broken: ga=%d dc=%d bing=%d rubicon=%d cpx=%d",
			ga, dc, bing, rubicon, cpx)
	}
	if frac := float64(dc) / float64(len(testWorld.Sites)); math.Abs(frac-0.56) > 0.05 {
		t.Errorf("doubleclick presence %.3f, want ≈0.56 (Fig 2: 8,293/14,719)", frac)
	}
	if criteo == 0 || rubicon == 0 {
		t.Error("mid-tier platforms absent")
	}
}

func TestYandexRegionality(t *testing.T) {
	present := map[etld.Region]int{}
	sites := map[etld.Region]int{}
	for _, s := range testWorld.Sites {
		sites[s.Region]++
		for _, p := range s.Platforms {
			if p == "yandex.com" {
				present[s.Region]++
			}
		}
	}
	if present[etld.RegionJapan] != 0 {
		t.Errorf("yandex present on %d .jp sites, Figure 6 shows none", present[etld.RegionJapan])
	}
	ruRate := float64(present[etld.RegionRussia]) / float64(sites[etld.RegionRussia])
	comRate := float64(present[etld.RegionCom]) / float64(sites[etld.RegionCom])
	if ruRate < 5*comRate {
		t.Errorf("yandex .ru rate %.3f not dominating .com rate %.3f", ruRate, comRate)
	}
}

func TestClassify(t *testing.T) {
	w := testWorld
	cases := []struct {
		host string
		want HostKind
	}{
		{w.Sites[0].Domain, HostSite},
		{"criteo.com", HostPlatform},
		{"onetrust.com", HostCMP},
		{GTMDomain, HostGTM},
		{"definitely-not-in-world.example", HostUnknown},
	}
	for _, c := range cases {
		if got := w.Classify(c.host); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.host, got, c.want)
		}
	}
	// A long-tail host classifies as such.
	for _, s := range w.Sites {
		if len(s.LongTail) > 0 {
			if got := w.Classify(s.LongTail[0]); got != HostLongTail {
				t.Errorf("Classify(long tail %q) = %v", s.LongTail[0], got)
			}
			break
		}
	}
	if name, ok := w.CMPForHost("cookiebot.com"); !ok || name != "Cookiebot" {
		t.Errorf("CMPForHost = %q, %v", name, ok)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Seed: 11, NumSites: 300})
	b := Generate(Config{Seed: 11, NumSites: 300})
	for i := range a.Sites {
		sa, sb := a.Sites[i], b.Sites[i]
		if sa.Domain != sb.Domain || sa.HasBanner != sb.HasBanner ||
			sa.CMP != sb.CMP || sa.GTMTopicsCall != sb.GTMTopicsCall ||
			strings.Join(sa.Platforms, ",") != strings.Join(sb.Platforms, ",") {
			t.Fatalf("site %d differs between runs", i)
		}
	}
	c := Generate(Config{Seed: 12, NumSites: 300})
	same := 0
	for i := range a.Sites {
		if a.Sites[i].Domain == c.Sites[i].Domain {
			same++
		}
	}
	if same == len(a.Sites) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestSiteDomainsNeverCollideWithInfrastructure(t *testing.T) {
	for _, s := range testWorld.Sites {
		if s.Domain == "distillery.com" {
			continue
		}
		if _, ok := testWorld.Catalog.ByDomain(s.Domain); ok {
			t.Errorf("site %q collides with a platform domain", s.Domain)
		}
		if _, ok := testWorld.CMPForHost(s.Domain); ok {
			t.Errorf("site %q collides with a CMP domain", s.Domain)
		}
	}
}

func TestTrancoListMatchesWorld(t *testing.T) {
	l := testWorld.List()
	if l.Len() != len(testWorld.Sites) {
		t.Fatalf("list len %d", l.Len())
	}
	if l.Entries[0].Rank != 1 || l.Entries[0].Domain != testWorld.Sites[0].Domain {
		t.Error("list head mismatch")
	}
}

func TestWorldSpecRoundTrip(t *testing.T) {
	small := Generate(Config{Seed: 5, NumSites: 150})
	var buf bytes.Buffer
	if err := small.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(got.Sites) != len(small.Sites) {
		t.Fatalf("site count %d vs %d", len(got.Sites), len(small.Sites))
	}
	for i := range small.Sites {
		a, b := small.Sites[i], got.Sites[i]
		if a.Domain != b.Domain || a.HasBanner != b.HasBanner || a.CMP != b.CMP ||
			a.GTMTopicsCall != b.GTMTopicsCall || a.RedirectTo != b.RedirectTo ||
			!reflect.DeepEqual(a.Platforms, b.Platforms) ||
			!reflect.DeepEqual(a.LongTail, b.LongTail) {
			t.Fatalf("site %d differs after round trip", i)
		}
	}
	// Indexes are rebuilt: classification still works.
	if got.Classify(small.Sites[0].Domain) != HostSite {
		t.Error("site index lost")
	}
	for _, s := range small.Sites {
		if len(s.LongTail) > 0 {
			if got.Classify(s.LongTail[0]) != HostLongTail {
				t.Error("long-tail index lost")
			}
			break
		}
	}
	if got.Classify("criteo.com") != HostPlatform {
		t.Error("catalog lost")
	}
}

func TestWorldSpecRejectsDamage(t *testing.T) {
	small := Generate(Config{Seed: 5, NumSites: 20})
	var buf bytes.Buffer
	small.Save(&buf)
	good := buf.String()

	cases := map[string]string{
		"not json":    "{broken",
		"bad version": strings.Replace(good, `"formatVersion":1`, `"formatVersion":9`, 1),
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGenerateRangeMatchesFull(t *testing.T) {
	cfg := Config{Seed: 7, NumSites: 8000}
	full := testWorld
	const lo, hi = 3001, 4500
	win := GenerateRange(cfg, lo, hi)

	if len(win.Sites) != hi-lo+1 {
		t.Fatalf("window sites = %d, want %d", len(win.Sites), hi-lo+1)
	}
	for i, got := range win.Sites {
		want := full.Sites[lo-1+i]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rank %d differs:\n got %+v\nwant %+v", want.Rank, got, want)
		}
	}

	// The window's rank list is the corresponding slice of the full list.
	wantEntries := full.List().Entries[lo-1 : hi]
	if !reflect.DeepEqual(win.List().Entries, wantEntries) {
		t.Fatal("window rank list differs from full list slice")
	}

	// Global host universes stay intact: classification of any host the
	// window's pages reference matches the full world's view, except for
	// sites outside the window (unknown to the shard, by design).
	for _, s := range win.Sites {
		if win.Classify(s.Domain) != HostSite {
			t.Errorf("window misclassifies own site %q", s.Domain)
		}
		for _, p := range s.Platforms {
			if got, want := win.Classify(p), full.Classify(p); got != want {
				t.Errorf("platform %q: window %v, full %v", p, got, want)
			}
		}
		for _, h := range s.LongTail {
			if got, want := win.Classify(h), full.Classify(h); got != want {
				t.Errorf("long-tail %q: window %v, full %v", h, got, want)
			}
		}
	}
}

func TestGenerateRangeClamps(t *testing.T) {
	cfg := Config{Seed: 3, NumSites: 50}
	w := GenerateRange(cfg, -5, 500)
	if len(w.Sites) != 50 {
		t.Fatalf("clamped range sites = %d, want 50", len(w.Sites))
	}
	if !reflect.DeepEqual(w.Sites, Generate(cfg).Sites) {
		t.Fatal("clamped full range differs from Generate")
	}
}
