package webworld

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"github.com/netmeasure/topicscope/internal/etld"
)

// topicWords are hostname tokens the classifier's keyword model knows;
// composing site names from them makes the Topics engine's "language
// model" classify sites meaningfully rather than by fallback hash.
var topicWords = []string{
	"news", "daily", "herald", "tribune", "press", "journal", "weather",
	"sport", "football", "soccer", "tennis", "golf", "cricket", "racing",
	"fitness", "yoga", "shop", "store", "deals", "coupon", "outlet",
	"fashion", "apparel", "shoes", "luxury", "toys", "gifts", "beauty",
	"cosmetic", "perfume", "hair", "tech", "computer", "laptop", "mobile",
	"software", "code", "cloud", "hosting", "security", "gadget", "camera",
	"bank", "finance", "money", "invest", "stocks", "trading", "forex",
	"credit", "loans", "mortgage", "insurance", "tax", "travel", "trip",
	"tour", "hotels", "flights", "cruise", "beach", "food", "recipes",
	"cooking", "kitchen", "pizza", "restaurant", "coffee", "wine",
	"grocery", "games", "gaming", "arcade", "chess", "poker", "puzzle",
	"movies", "film", "cinema", "series", "music", "radio", "rock",
	"jazz", "anime", "manga", "comics", "stream", "video", "photo",
	"art", "design", "comedy", "dance", "auto", "cars", "moto", "truck",
	"garage", "home", "garden", "decor", "diy", "realty", "estate",
	"property", "rent", "housing", "jobs", "career", "learn", "school",
	"college", "academy", "courses", "pets", "dog", "cat", "vet",
	"baby", "parent", "wedding", "dating", "social", "forum", "blog",
	"books", "ebook", "poetry", "wiki", "maps", "science", "astro",
	"math", "physics", "climate", "craft", "fishing", "hiking", "camping",
	"cycling", "running", "outdoor", "law", "legal", "court", "business",
	"marketing", "farm", "energy", "pharma",
}

// fillerWords are brandish tokens with no topic signal.
var fillerWords = []string{
	"zone", "point", "spot", "base", "world", "planet", "city", "land",
	"center", "central", "direct", "express", "first", "global", "one",
	"pro", "plus", "max", "top", "best", "easy", "smart", "quick",
	"mega", "super", "prime", "vista", "nova", "alpha", "delta", "omni",
}

// sisterSuffixes build same-organisation alias domains with a different
// second-level label (§4: e.g. windows.com vs microsoft.com).
var sisterSuffixes = []string{"group", "media", "corp", "digital", "holding", "brands"}

// longTailPrefixes name ordinary third-party services.
var longTailPrefixes = []string{
	"cdn", "static", "img", "assets", "api", "pixel", "sync", "media",
	"widget", "track", "metrics", "fonts", "tags", "beacon", "edge",
	"cache", "embed", "player", "comments", "search",
}

// regionTLDs weight concrete TLDs within each region; EU entries carry
// the banner language of their country.
var regionTLDs = map[etld.Region][]tldChoice{
	etld.RegionCom: {{"com", "en", 1}},
	etld.RegionJapan: {
		{"jp", "ja", 0.6}, {"co.jp", "ja", 0.4},
	},
	etld.RegionRussia: {
		{"ru", "ru", 0.9}, {"msk.ru", "ru", 0.05}, {"com.ru", "ru", 0.05},
	},
	etld.RegionEU: {
		{"de", "de", 0.18}, {"fr", "fr", 0.16}, {"it", "it", 0.13},
		{"es", "es", 0.11}, {"nl", "nl", 0.08}, {"pl", "pl", 0.09},
		{"se", "sv", 0.05}, {"pt", "pt", 0.04}, {"at", "de", 0.04},
		{"be", "fr", 0.03}, {"cz", "cs", 0.03}, {"dk", "da", 0.02},
		{"fi", "fi", 0.02}, {"ie", "en", 0.02},
	},
	etld.RegionOther: {
		{"org", "en", 0.17}, {"net", "en", 0.12}, {"co.uk", "en", 0.14},
		{"io", "en", 0.07}, {"co", "en", 0.05}, {"in", "en", 0.08},
		{"com.br", "pt", 0.09}, {"com.au", "en", 0.06}, {"ca", "en", 0.05},
		{"us", "en", 0.04}, {"tr", "tr", 0.05}, {"com.mx", "es", 0.05},
		{"ch", "de", 0.03},
	},
}

type tldChoice struct {
	tld    string
	lang   string
	weight float64
}

// comLanguages lets .com sites occasionally carry non-English banners.
var comLanguages = []struct {
	lang   string
	weight float64
}{
	{"en", 0.84}, {"es", 0.06}, {"de", 0.04}, {"fr", 0.03}, {"it", 0.03},
}

// namer produces unique hostnames.
type namer struct {
	used map[string]bool
}

func newNamer() *namer { return &namer{used: make(map[string]bool)} }

// pickRegion draws a region per Config.RegionShare.
func pickRegion(rng *rand.Rand, share map[etld.Region]float64) etld.Region {
	var total float64
	for _, r := range etld.Regions {
		total += share[r]
	}
	x := rng.Float64() * total
	for _, r := range etld.Regions {
		if x < share[r] {
			return r
		}
		x -= share[r]
	}
	return etld.RegionOther
}

// pickTLD draws a TLD + language for the region.
func pickTLD(rng *rand.Rand, region etld.Region) (tld, lang string) {
	choices := regionTLDs[region]
	var total float64
	for _, c := range choices {
		total += c.weight
	}
	x := rng.Float64() * total
	for _, c := range choices {
		if x < c.weight {
			tld, lang = c.tld, c.lang
			break
		}
		x -= c.weight
	}
	if tld == "" {
		last := choices[len(choices)-1]
		tld, lang = last.tld, last.lang
	}
	if region == etld.RegionCom {
		x := rng.Float64()
		for _, c := range comLanguages {
			if x < c.weight {
				lang = c.lang
				break
			}
			x -= c.weight
		}
	}
	return tld, lang
}

// siteDomain builds a unique site domain whose label embeds topic
// keywords the classifier understands.
func (n *namer) siteDomain(rng *rand.Rand, tld string) string {
	for attempt := 0; ; attempt++ {
		var parts []string
		parts = append(parts, topicWords[rng.IntN(len(topicWords))])
		switch rng.IntN(4) {
		case 0: // two topic words
			parts = append(parts, topicWords[rng.IntN(len(topicWords))])
		case 1, 2: // topic + filler
			parts = append(parts, fillerWords[rng.IntN(len(fillerWords))])
		}
		label := strings.Join(parts, pickSep(rng))
		if attempt > 2 {
			label = fmt.Sprintf("%s%d", label, rng.IntN(1000))
		}
		d := label + "." + tld
		if !n.used[d] {
			n.used[d] = true
			return d
		}
	}
}

// sisterDomain builds the same-organisation alias for a site, guaranteed
// to have a different second-level label and to be unique.
func (n *namer) sisterDomain(rng *rand.Rand, siteDomain string) string {
	label := etld.SecondLevelLabel(siteDomain)
	tlds := []string{"com", "net", "org"}
	for attempt := 0; ; attempt++ {
		suffix := sisterSuffixes[rng.IntN(len(sisterSuffixes))]
		cand := label + suffix
		if attempt > 2 {
			cand = fmt.Sprintf("%s%d", cand, rng.IntN(1000))
		}
		d := cand + "." + tlds[rng.IntN(len(tlds))]
		if !n.used[d] && etld.SecondLevelLabel(d) != label {
			n.used[d] = true
			return d
		}
	}
}

// longTailHost builds the i-th long-tail third-party host.
func longTailHost(rng *rand.Rand, i int) string {
	prefix := longTailPrefixes[rng.IntN(len(longTailPrefixes))]
	brand := fillerWords[rng.IntN(len(fillerWords))] + fillerWords[rng.IntN(len(fillerWords))]
	tlds := []string{"com", "net", "io", "org", "co"}
	return fmt.Sprintf("%s.%s%d.%s", prefix, brand, i, tlds[rng.IntN(len(tlds))])
}

func pickSep(rng *rand.Rand) string {
	if rng.IntN(3) == 0 {
		return ""
	}
	return "-"
}
