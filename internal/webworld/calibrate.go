package webworld

import (
	"time"

	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/etld"
)

// DefaultChaos returns the paper-calibrated fault-injection profile.
// The world's ReachableRate already removes 13.2% of sites at the
// network level (§2.4); chaos layers the live-host weather on top:
// ≈0.5% of hosts hard-down, 15% flaky with a 30% per-request fault
// mix and 25% latency injection (a third of which exceeds the 30s
// client patience). Under the default retry budget the combined
// Before-Accept visit-success rate lands within a point of the
// paper's 86.8%; with retries disabled it drops by ≈4 points —
// the recovery the resilience layer buys.
func DefaultChaos(seed uint64) chaos.Config {
	return chaos.Config{
		Enabled:            true,
		Seed:               seed,
		HardDownRate:       0.005,
		FlakyRate:          0.15,
		FaultRate:          0.30,
		LatencyRate:        0.25,
		MaxLatency:         45 * time.Second,
		TimeoutAfter:       30 * time.Second,
		HTTP5xxWeight:      0.45,
		ResetWeight:        0.35,
		TruncateWeight:     0.20,
		WellKnownFlakyRate: 0.10,
		WellKnownFaultRate: 0.50,
	}
}

// Config parameterises world generation. The zero value plus
// withDefaults() reproduces the paper-calibrated world; every default
// cites the paper statistic that motivates it.
type Config struct {
	// Seed drives all randomness; same seed ⇒ identical world.
	Seed uint64
	// NumSites is the rank-list length (paper: top-50,000).
	NumSites int
	// LongTailPool is the universe of ordinary third-party hosts; sized
	// so a full crawl sees ≈19,534 unique third parties (§2.4).
	LongTailPool int
	// LongTailPerSiteMin/Max bound how many long-tail hosts one site
	// embeds.
	LongTailPerSiteMin, LongTailPerSiteMax int

	// ReachableRate: the paper successfully visits 43,405/50,000 ≈ 86.8%
	// of sites, losing the rest to DNS or connection errors.
	ReachableRate float64

	// BannerRate[region]: probability a site shows a privacy banner.
	// Calibrated so ≈30% of successful sites end with an accepted
	// banner (§2.4: 14,719 of 43,405), given language support below.
	BannerRate map[etld.Region]float64
	// ObscureBannerRate: banners whose accept control Priv-Accept cannot
	// recognise even in a supported language (its authors report 92–95%
	// accuracy).
	ObscureBannerRate float64
	// CMPRate: share of banner sites using a known CMP from cmpdb.
	CMPRate float64
	// CustomGatedRate: share of banner sites *without* a CMP that still
	// gate ad tags until consent.
	CustomGatedRate float64

	// GTMRate: share of sites embedding Google Tag Manager (§4: GTM is
	// on 95% of the sites where anomalous calls occur).
	GTMRate float64
	// GTMTopicsRate: share of GTM containers whose configuration reaches
	// the browsingTopics() call. Together with GTMRate it is calibrated
	// against §4: 2,614 anomalous CPs over the 14,719-site D_AA ≈ 17.8%.
	GTMTopicsRate float64
	// GTMConsentModeRate: share of topics-calling GTM containers that
	// defer the call until consent; the remainder also fire in
	// Before-Accept, yielding the ≈1,308 not-Allowed D_BA callers
	// (1,308/43,405 ≈ 3.0%).
	GTMConsentModeRate float64
	// OtherLibTopicsRate: sites with a non-GTM first-party library
	// calling browsingTopics() (the ≈5% of anomalous sites without GTM).
	OtherLibTopicsRate float64

	// AdsPreConsentRate[region]: probability that a site whose ad stack
	// is not CMP-gated still fires its ad tags before any consent.
	// Region-dependent: .ru sites rarely wait, EU sites mostly do.
	// Calibrated against Figure 6's D_BA embedding counts (e.g. criteo
	// embedded pre-consent on only ≈1.5k of 43k sites despite a 15.5%
	// D_AA presence).
	AdsPreConsentRate map[etld.Region]float64

	// SisterRedirectRate: sites 301-redirecting to a same-organisation
	// domain with a different second-level label (§4: 28% of anomalous
	// calls have CP ≠ visited site).
	SisterRedirectRate float64

	// AdIntensityWeights maps intensity levels to probabilities; level 0
	// models ad-free sites.
	AdIntensityWeights map[float64]float64

	// FirstPartyResourcesMin/Max bound same-site subresource counts.
	FirstPartyResourcesMin, FirstPartyResourcesMax int

	// RegionShare: distribution of site regions, approximating the
	// Tranco TLD mix (Figure 6 presence rows imply substantial .com,
	// EU and .ru populations and a small .jp one).
	RegionShare map[etld.Region]float64

	// DistilleryRank places the distillery.com site (§2.4: the one
	// Attested-but-not-Allowed party, calling only on its own website).
	DistilleryRank int
}

func (c Config) withDefaults() Config {
	if c.NumSites <= 0 {
		c.NumSites = 50000
	}
	if c.LongTailPool <= 0 {
		// Tuned so a full 50k crawl yields ≈19.5k unique third parties.
		c.LongTailPool = 17500
	}
	if c.LongTailPerSiteMin <= 0 {
		c.LongTailPerSiteMin = 2
	}
	if c.LongTailPerSiteMax <= 0 {
		c.LongTailPerSiteMax = 14
	}
	if c.ReachableRate == 0 {
		c.ReachableRate = 0.868
	}
	if c.BannerRate == nil {
		c.BannerRate = map[etld.Region]float64{
			etld.RegionCom:    0.44,
			etld.RegionJapan:  0.22,
			etld.RegionRussia: 0.32,
			etld.RegionEU:     0.80,
			etld.RegionOther:  0.40,
		}
	}
	if c.ObscureBannerRate == 0 {
		c.ObscureBannerRate = 0.07
	}
	if c.CMPRate == 0 {
		c.CMPRate = 0.60
	}
	if c.CustomGatedRate == 0 {
		c.CustomGatedRate = 0.35
	}
	if c.GTMRate == 0 {
		c.GTMRate = 0.62
	}
	if c.GTMTopicsRate == 0 {
		c.GTMTopicsRate = 0.27
	}
	if c.GTMConsentModeRate == 0 {
		c.GTMConsentModeRate = 0.82
	}
	if c.OtherLibTopicsRate == 0 {
		c.OtherLibTopicsRate = 0.009
	}
	if c.AdsPreConsentRate == nil {
		c.AdsPreConsentRate = map[etld.Region]float64{
			etld.RegionCom:    0.30,
			etld.RegionJapan:  0.50,
			etld.RegionRussia: 0.85,
			etld.RegionEU:     0.18,
			etld.RegionOther:  0.40,
		}
	}
	if c.SisterRedirectRate == 0 {
		c.SisterRedirectRate = 0.28
	}
	if c.AdIntensityWeights == nil {
		c.AdIntensityWeights = map[float64]float64{
			0:   0.24,
			0.7: 0.24,
			1.0: 0.30,
			1.5: 0.22,
		}
	}
	if c.FirstPartyResourcesMin <= 0 {
		c.FirstPartyResourcesMin = 4
	}
	if c.FirstPartyResourcesMax <= 0 {
		c.FirstPartyResourcesMax = 18
	}
	if c.RegionShare == nil {
		c.RegionShare = map[etld.Region]float64{
			etld.RegionCom:    0.42,
			etld.RegionJapan:  0.035,
			etld.RegionRussia: 0.055,
			etld.RegionEU:     0.20,
			etld.RegionOther:  0.29,
		}
	}
	if c.DistilleryRank <= 0 {
		c.DistilleryRank = 24000
		if c.DistilleryRank > c.NumSites {
			c.DistilleryRank = (c.NumSites + 1) / 2
		}
	}
	return c
}
