package webworld

import (
	"math/rand/v2"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/cmpdb"
	"github.com/netmeasure/topicscope/internal/etld"
)

// Generate builds the synthetic web. Generation is deterministic in
// Config.Seed.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	return GenerateRange(cfg, 1, cfg.NumSites)
}

// GenerateRange builds the world window covering ranks [from, to]: the
// generator streams through ranks 1..to exactly as Generate would —
// site generation shares sequential namer state, so rank r's domain
// depends on every earlier rank's collisions — but only the sites
// inside the window are materialized and indexed. The retained sites
// are byte-identical to the same ranks of a full Generate, which is
// what lets a campaign shard hold just its slice of a 500k-site world
// (plus the O(1)-per-rank namer state) instead of the whole thing.
//
// World-level host universes (ad catalog, CMP hosts, long-tail pool)
// are global and fully present, so Classify and serving work unchanged
// for every host a shard's pages can reference.
func GenerateRange(cfg Config, from, to int) *World {
	cfg = cfg.withDefaults()
	if from < 1 {
		from = 1
	}
	if to > cfg.NumSites {
		to = cfg.NumSites
	}
	w := &World{
		Cfg:      cfg,
		Catalog:  adcatalog.New(),
		byDomain: make(map[string]*Site, (to-from+1)*2+1),
		longTail: make(map[string]bool, cfg.LongTailPool),
		cmpHosts: make(map[string]string, 16),
	}
	for _, c := range cmpdb.All() {
		w.cmpHosts[c.Domain] = c.Name
	}

	pool := makeLongTailPool(cfg)
	for _, h := range pool.hosts {
		w.longTail[h] = true
	}

	stream(cfg, pool, to, func(site *Site) {
		if site.Rank < from {
			return // generated for namer state only; not retained
		}
		w.Sites = append(w.Sites, site)
		w.byDomain[site.Domain] = site
		if site.RedirectTo != "" {
			w.byDomain[site.RedirectTo] = site
		}
	})
	return w
}

// stream generates sites of ranks 1..to in rank order, invoking visit
// for each. It is the sequential core shared by Generate and
// GenerateRange; cfg must already carry defaults.
func stream(cfg Config, pool *longTailPool, to int, visit func(*Site)) {
	catalog := adcatalog.New()
	nm := newNamer()
	reserveKnownDomains(nm, catalog)

	meanIntensity := meanAdIntensity(cfg.AdIntensityWeights)
	embeddable := catalog.Embeddable()

	for rank := 1; rank <= to; rank++ {
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(rank)*0x9E3779B97F4A7C15+0xD1B54A32D192ED03))
		var site *Site
		if rank == cfg.DistilleryRank {
			site = distillerySite(rank)
		} else {
			site = genSite(rank, rng, cfg, nm, pool, embeddable, meanIntensity)
		}
		visit(site)
	}
}

// reserveKnownDomains prevents the namer from generating a site that
// collides with a platform, CMP or infrastructure domain.
func reserveKnownDomains(nm *namer, catalog *adcatalog.Catalog) {
	for _, p := range catalog.All() {
		nm.used[p.Domain] = true
	}
	for _, c := range cmpdb.All() {
		nm.used[c.Domain] = true
	}
	nm.used[GTMDomain] = true
}

func genSite(rank int, rng *rand.Rand, cfg Config, nm *namer, pool *longTailPool, embeddable []*adcatalog.Platform, meanIntensity float64) *Site {
	region := pickRegion(rng, cfg.RegionShare)
	tld, lang := pickTLD(rng, region)
	s := &Site{
		Rank:     rank,
		Domain:   nm.siteDomain(rng, tld),
		Region:   region,
		Language: lang,
	}

	s.Reachable = rng.Float64() < cfg.ReachableRate
	if !s.Reachable {
		switch rng.IntN(3) {
		case 0:
			s.Failure = FailDNS
		case 1:
			s.Failure = FailRefused
		default:
			s.Failure = FailTimeout
		}
	}

	s.AdIntensity = pickIntensity(rng, cfg.AdIntensityWeights)

	// Privacy banner, CMP and gating.
	s.HasBanner = rng.Float64() < cfg.BannerRate[region]
	if s.HasBanner {
		s.ObscureBanner = rng.Float64() < cfg.ObscureBannerRate
		if rng.Float64() < cfg.CMPRate {
			cmp := cmpdb.Pick(rng)
			s.CMP = cmp.Name
			s.CMPMisconfigured = rng.Float64() < cmp.MisconfigRate
			s.Gated = !s.CMPMisconfigured
		} else {
			s.Gated = rng.Float64() < cfg.CustomGatedRate
		}
	}

	s.AdsPreConsent = rng.Float64() < cfg.AdsPreConsentRate[region]

	// Google Tag Manager and the §4 anomaly sources.
	s.HasGTM = rng.Float64() < cfg.GTMRate
	if s.HasGTM && rng.Float64() < cfg.GTMTopicsRate {
		s.GTMTopicsCall = true
		s.GTMConsentMode = rng.Float64() < cfg.GTMConsentModeRate
	}
	if !s.GTMTopicsCall {
		s.OtherLibTopicsCall = rng.Float64() < cfg.OtherLibTopicsRate
	}

	// Same-organisation redirects concentrate on sites whose tag
	// configurations call the Topics API (see DESIGN.md): the paper's
	// 72%/28% split is measured on anomalous calls only.
	redirectRate := 0.015
	if s.GTMTopicsCall || s.OtherLibTopicsCall {
		redirectRate = cfg.SisterRedirectRate
	}
	if rng.Float64() < redirectRate {
		s.RedirectTo = nm.sisterDomain(rng, s.Domain)
	}

	// Ad platforms.
	for _, p := range embeddable {
		prob := p.ReachIn(region)
		if p.Domain != "google-analytics.com" { // analytics presence is ad-independent
			prob = prob * s.AdIntensity / meanIntensity
		}
		if prob > 1 {
			prob = 1
		}
		if rng.Float64() < prob {
			s.Platforms = append(s.Platforms, p.Domain)
		}
	}

	// Long-tail third parties and first-party resources.
	n := cfg.LongTailPerSiteMin
	if spread := cfg.LongTailPerSiteMax - cfg.LongTailPerSiteMin; spread > 0 {
		n += rng.IntN(spread + 1)
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		h := pool.pick(rng)
		if !seen[h] {
			seen[h] = true
			s.LongTail = append(s.LongTail, h)
		}
	}
	s.FirstPartyResources = cfg.FirstPartyResourcesMin +
		rng.IntN(cfg.FirstPartyResourcesMax-cfg.FirstPartyResourcesMin+1)
	return s
}

// distillerySite is the fixed site for the attested-but-not-allowed
// first party of §2.4: reachable, with an acceptable English banner, no
// GTM, and only its own Topics integration.
func distillerySite(rank int) *Site {
	return &Site{
		Rank:                rank,
		Domain:              "distillery.com",
		Region:              etld.RegionCom,
		Language:            "en",
		AdIntensity:         1,
		Reachable:           true,
		HasBanner:           true,
		AdsPreConsent:       true,
		Platforms:           []string{"distillery.com"},
		FirstPartyResources: 8,
	}
}

func pickIntensity(rng *rand.Rand, weights map[float64]float64) float64 {
	// Iterate levels in a fixed order for determinism.
	levels := []float64{0, 0.7, 1.0, 1.5}
	var total float64
	for _, l := range levels {
		total += weights[l]
	}
	x := rng.Float64() * total
	for _, l := range levels {
		if x < weights[l] {
			return l
		}
		x -= weights[l]
	}
	return 1
}

func meanAdIntensity(weights map[float64]float64) float64 {
	var sum, w float64
	for level, p := range weights {
		sum += level * p
		w += p
	}
	if w == 0 {
		return 1
	}
	return sum / w
}

// longTailPool is the two-tier universe of ordinary third parties: a
// small popular tier absorbing most embeddings plus a broad tail, so a
// full crawl observes ≈19.5k unique third parties (§2.4) while scaled
// crawls observe proportionally fewer.
type longTailPool struct {
	hosts   []string
	popular int // first N hosts form the popular tier
}

// popularShare is the fraction of embeddings drawn from the popular
// tier.
const popularShare = 0.6

func makeLongTailPool(cfg Config) *longTailPool {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5EED10))
	p := &longTailPool{popular: cfg.LongTailPool / 12}
	seen := make(map[string]bool, cfg.LongTailPool)
	for len(p.hosts) < cfg.LongTailPool {
		h := longTailHost(rng, len(p.hosts))
		if !seen[h] {
			seen[h] = true
			p.hosts = append(p.hosts, h)
		}
	}
	return p
}

func (p *longTailPool) pick(rng *rand.Rand) string {
	if rng.Float64() < popularShare {
		return p.hosts[rng.IntN(p.popular)]
	}
	return p.hosts[p.popular+rng.IntN(len(p.hosts)-p.popular)]
}
