// Package webworld generates the deterministic synthetic web the crawler
// measures: a Tranco-style ranking of sites, each with a region and
// language, privacy banner and CMP deployment, Google Tag Manager
// presence (including the configurations whose root-context
// browsingTopics() call produces the paper's §4 anomaly), embedded ad
// platforms from internal/adcatalog, a long tail of ordinary third
// parties, and the failure modes a real crawl encounters.
//
// This package substitutes for the live Web of the paper's measurement
// (DESIGN.md, "Substitutions"): every rate is calibrated against a
// statistic the paper reports, see calibrate.go.
package webworld

import (
	"fmt"
	"sort"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/tranco"
)

// FailureMode describes why an unreachable site fails.
type FailureMode string

// Failure modes observed by real crawls ("domain name resolution or
// connection-related errors", §2.4).
const (
	FailNone    FailureMode = ""
	FailDNS     FailureMode = "dns"
	FailRefused FailureMode = "refused"
	FailTimeout FailureMode = "timeout"
)

// Site is one website of the synthetic web.
type Site struct {
	// Rank is the 1-based position in the rank list.
	Rank int
	// Domain is the registrable domain in the rank list.
	Domain string
	// Region derives from the TLD (Figure 6 grouping).
	Region etld.Region
	// Language is the page/banner language (ISO 639-1).
	Language string
	// AdIntensity scales ad-platform embedding: 0 means an ad-free site.
	AdIntensity float64

	// Reachable is false for the ≈13% of sites a crawl loses; Failure
	// tells how loading fails.
	Reachable bool
	Failure   FailureMode

	// HasBanner: the site shows a privacy banner on first visit.
	HasBanner bool
	// ObscureBanner: the banner's accept control uses wording outside
	// Priv-Accept's keyword lists, so automatic acceptance fails.
	ObscureBanner bool
	// CMP is the consent-management platform name ("" = none/custom).
	CMP string
	// CMPMisconfigured: the CMP deployment lets third parties run before
	// consent (the Figure 7 phenomenon).
	CMPMisconfigured bool
	// Gated: ad-platform tags are withheld until consent.
	Gated bool
	// AdsPreConsent: for non-CMP-gated sites, whether the ad stack fires
	// before consent at all (many publishers trigger ads only from a
	// consent signal even without a strict CMP).
	AdsPreConsent bool

	// HasGTM: the site embeds Google Tag Manager.
	HasGTM bool
	// GTMTopicsCall: this GTM container configuration reaches the
	// browsingTopics() call (§4: GTM "contains a call to the
	// browsingTopics() function").
	GTMTopicsCall bool
	// GTMConsentMode: the container defers that call until consent.
	GTMConsentMode bool
	// OtherLibTopicsCall: a non-GTM first-party library with a
	// root-context browsingTopics() call (the remaining ≈5% of
	// anomalous-call sites that have no GTM).
	OtherLibTopicsCall bool

	// RedirectTo, when set, is a sister domain owned by the same
	// organisation that the site HTTP-redirects to; calls then execute
	// under the sister origin (the 28% of §4 anomalous calls whose CP
	// does not textually match the visited site).
	RedirectTo string

	// Platforms lists the embedded ad-platform domains.
	Platforms []string
	// LongTail lists embedded ordinary third-party hosts.
	LongTail []string
	// FirstPartyResources is how many same-site subresources the page
	// references.
	FirstPartyResources int
}

// LoadsAdsPreConsent reports whether the site's ad-platform tags load in
// a Before-Accept visit: a misconfigured CMP fires them immediately; a
// healthy CMP or a gating custom banner withholds them; everyone else
// follows the AdsPreConsent coin.
func (s *Site) LoadsAdsPreConsent() bool {
	if s.CMP != "" {
		return s.CMPMisconfigured
	}
	if s.Gated {
		return false
	}
	return s.AdsPreConsent
}

// EffectiveDomain is the origin serving the site's content: the sister
// domain when the site redirects, otherwise the site itself.
func (s *Site) EffectiveDomain() string {
	if s.RedirectTo != "" {
		return s.RedirectTo
	}
	return s.Domain
}

// HostKind classifies a hostname within the world.
type HostKind int

// Host kinds, from the crawler's perspective.
const (
	HostUnknown  HostKind = iota
	HostSite              // a ranked website (or its www alias)
	HostSister            // a redirect target owned by a site's org
	HostPlatform          // an ad-platform domain from the catalog
	HostCMP               // a consent-management-platform domain
	HostGTM               // www.googletagmanager.com
	HostLongTail          // an ordinary third party
)

// GTMDomain is the host serving Google Tag Manager containers.
const GTMDomain = "www.googletagmanager.com"

// World is the generated synthetic web.
type World struct {
	Cfg      Config
	Catalog  *adcatalog.Catalog
	Sites    []*Site
	byDomain map[string]*Site // site domains and sister domains
	longTail map[string]bool
	cmpHosts map[string]string // consent host -> CMP name
}

// List returns the world's rank list. Entries carry each site's global
// rank, so a GenerateRange window yields the same entries as the
// corresponding slice of the full world's list.
func (w *World) List() *tranco.List {
	entries := make([]tranco.Entry, len(w.Sites))
	for i, s := range w.Sites {
		entries[i] = tranco.Entry{Rank: s.Rank, Domain: s.Domain}
	}
	return &tranco.List{Entries: entries}
}

// SiteByDomain resolves a ranked site (or one of its sister domains).
func (w *World) SiteByDomain(domain string) (*Site, bool) {
	s, ok := w.byDomain[etld.Normalize(domain)]
	return s, ok
}

// Classify reports what role a hostname plays in the world.
func (w *World) Classify(host string) HostKind {
	host = etld.Normalize(host)
	if host == GTMDomain {
		return HostGTM
	}
	if s, ok := w.byDomain[host]; ok {
		if s.Domain == host {
			return HostSite
		}
		return HostSister
	}
	if _, ok := w.Catalog.ByDomain(host); ok {
		return HostPlatform
	}
	if _, ok := w.cmpHosts[host]; ok {
		return HostCMP
	}
	if w.longTail[host] {
		return HostLongTail
	}
	return HostUnknown
}

// CMPForHost returns the CMP name served by a consent host.
func (w *World) CMPForHost(host string) (string, bool) {
	name, ok := w.cmpHosts[etld.Normalize(host)]
	return name, ok
}

// Stats summarises the world for logging and sanity tests.
type Stats struct {
	Sites          int
	Reachable      int
	WithBanner     int
	WithCMP        int
	Misconfigured  int
	WithGTM        int
	GTMTopics      int
	Redirecting    int
	AdFree         int
	UniqueLongTail int
	ByRegion       map[etld.Region]int
}

// Stats computes world-level aggregates.
func (w *World) Stats() Stats {
	st := Stats{ByRegion: make(map[etld.Region]int)}
	for _, s := range w.Sites {
		st.Sites++
		st.ByRegion[s.Region]++
		if s.Reachable {
			st.Reachable++
		}
		if s.HasBanner {
			st.WithBanner++
		}
		if s.CMP != "" {
			st.WithCMP++
		}
		if s.CMPMisconfigured {
			st.Misconfigured++
		}
		if s.HasGTM {
			st.WithGTM++
		}
		if s.GTMTopicsCall {
			st.GTMTopics++
		}
		if s.RedirectTo != "" {
			st.Redirecting++
		}
		if s.AdIntensity == 0 {
			st.AdFree++
		}
	}
	st.UniqueLongTail = len(w.longTail)
	return st
}

// String renders a one-line stats summary.
func (s Stats) String() string {
	regions := make([]string, 0, len(s.ByRegion))
	for _, r := range etld.Regions {
		regions = append(regions, fmt.Sprintf("%s:%d", r, s.ByRegion[r]))
	}
	sort.Strings(regions)
	return fmt.Sprintf("sites=%d reachable=%d banner=%d cmp=%d misconfig=%d gtm=%d gtmTopics=%d redirect=%d adFree=%d longTail=%d",
		s.Sites, s.Reachable, s.WithBanner, s.WithCMP, s.Misconfigured,
		s.WithGTM, s.GTMTopics, s.Redirecting, s.AdFree, s.UniqueLongTail)
}
