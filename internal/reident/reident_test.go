package reident

import (
	"math"
	"reflect"
	"testing"
)

func TestSimulateShape(t *testing.T) {
	res := Simulate(Config{Users: 120, Epochs: 6, Seed: 3, NoNoise: true})
	if len(res.MatchRate) != 6 || len(res.TopicsPerUser) != 6 {
		t.Fatalf("series lengths: %d, %d", len(res.MatchRate), len(res.TopicsPerUser))
	}
	for k, r := range res.MatchRate {
		if r < 0 || r > 1 {
			t.Errorf("epoch %d: rate %f out of range", k, r)
		}
	}
	// Accumulated topics grow with observation time.
	if res.TopicsPerUser[5] <= res.TopicsPerUser[0] {
		t.Errorf("topics per user did not grow: %v", res.TopicsPerUser)
	}
	// The attack works: after several epochs a large share of users is
	// re-identified across the two publishers (PETS 2023 reports
	// majority re-identification within weeks for stable profiles).
	if res.MatchRate[5] < 0.5 {
		t.Errorf("re-identification after 6 epochs = %.2f, expected the attack to work", res.MatchRate[5])
	}
	// And more observation helps.
	if res.MatchRate[5] < res.MatchRate[0] {
		t.Errorf("rate decreased with epochs: %v", res.MatchRate)
	}
}

func TestNoiseMitigates(t *testing.T) {
	clean := Simulate(Config{Users: 120, Epochs: 5, Seed: 9, NoNoise: true})
	noisy := Simulate(Config{Users: 120, Epochs: 5, Seed: 9, NoNoise: false})
	// The 5% replacement is plausible deniability, not a hard defence:
	// it must not *increase* linkability.
	last := len(clean.MatchRate) - 1
	if noisy.MatchRate[last] > clean.MatchRate[last]+0.05 {
		t.Errorf("noise increased re-identification: %.2f vs %.2f",
			noisy.MatchRate[last], clean.MatchRate[last])
	}
}

func TestDeterministic(t *testing.T) {
	a := Simulate(Config{Users: 60, Epochs: 3, Seed: 11})
	b := Simulate(Config{Users: 60, Epochs: 3, Seed: 11})
	if !reflect.DeepEqual(a.MatchRate, b.MatchRate) {
		t.Error("same seed produced different results")
	}
	c := Simulate(Config{Users: 60, Epochs: 3, Seed: 12})
	if reflect.DeepEqual(a.MatchRate, c.MatchRate) {
		t.Error("different seeds produced identical results")
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Users == 0 || cfg.Epochs == 0 || cfg.ProfileSites == 0 || cfg.VisitsPerEpoch == 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}

func TestJaccard(t *testing.T) {
	a := map[int]bool{1: true, 2: true, 3: true}
	b := map[int]bool{2: true, 3: true, 4: true}
	if got := jaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("jaccard = %f", got)
	}
	if jaccard(nil, nil) != 0 {
		t.Error("empty jaccard not 0")
	}
	if jaccard(a, a) != 1 {
		t.Error("self jaccard not 1")
	}
}

func TestMatchRateStrictness(t *testing.T) {
	// Identical profiles across users are ambiguous: ties must not count
	// as re-identification.
	same := map[int]bool{1: true, 2: true}
	a := []map[int]bool{same, same}
	b := []map[int]bool{same, same}
	if got := matchRate(a, b); got != 0 {
		t.Errorf("ambiguous population matched at %.2f, want 0", got)
	}
	// Distinct profiles match perfectly.
	a = []map[int]bool{{1: true}, {2: true}}
	b = []map[int]bool{{1: true}, {2: true}}
	if got := matchRate(a, b); got != 1 {
		t.Errorf("distinct population matched at %.2f, want 1", got)
	}
	// Empty observation cannot match.
	a = []map[int]bool{{}}
	b = []map[int]bool{{1: true}}
	if got := matchRate(a, b); got != 0 {
		t.Errorf("empty profile matched at %.2f", got)
	}
}
