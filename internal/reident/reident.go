// Package reident implements the re-identification attack against the
// Topics API that the paper points to when noting that "some theoretical
// and practical results show ... that some privacy leak may still
// happen" (§2.1, citing Jha, Trevisan, Leonardi & Mellia, PETS 2023, and
// Beugin & McDaniel, PETS 2024).
//
// Threat model: a calling party embedded on two different websites
// (publisher A and publisher B) collects the topics the browser returns
// on each site, epoch after epoch. Because each epoch's answer is drawn
// from the user's top-5 topics, the accumulated topic sets fingerprint
// the user's interest profile: the attacker matches the profile observed
// on site A against every profile observed on site B and re-identifies
// the user across sites — exactly the cross-site linkage the Topics API
// was designed to prevent.
//
// The simulation runs a population of synthetic users, each with a
// stable browsing profile, through the real engine of internal/topics —
// per-caller filtering, per-(epoch, site) topic selection and the 5%
// plausible-deniability noise included — and measures the
// re-identification rate as a function of observed epochs, with and
// without noise (the designed mitigation).
package reident

import (
	"fmt"
	"math/rand/v2"
	"time"

	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/taxonomy"
	"github.com/netmeasure/topicscope/internal/topics"
)

// Config parameterises a simulation.
type Config struct {
	// Users is the population size (all candidates for matching).
	Users int
	// Epochs is how many weeks the attacker observes.
	Epochs int
	// ProfileSites is the size of each user's stable browsing profile.
	ProfileSites int
	// VisitsPerEpoch is how many page visits a user makes per week.
	VisitsPerEpoch int
	// Churn is the fraction of visits outside the stable profile.
	Churn float64
	// NoNoise disables the engine's 5% replacement — the ablation that
	// quantifies how much the mitigation helps.
	NoNoise bool
	// Seed drives the whole simulation.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 200
	}
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.ProfileSites <= 0 {
		c.ProfileSites = 6
	}
	if c.VisitsPerEpoch <= 0 {
		c.VisitsPerEpoch = 30
	}
	if c.Churn < 0 || c.Churn >= 1 {
		c.Churn = 0.15
	}
	return c
}

// The two colluding publishers the attacker is embedded on.
const (
	siteA = "publisher-a.com"
	siteB = "publisher-b.org"
	// attacker is the calling party (one enrolled CP on both sites).
	attacker = "attacker-adtech.example"
)

// Result is the outcome of a simulation.
type Result struct {
	Cfg Config
	// MatchRate[k] is the fraction of users whose site-A profile after
	// k+1 epochs matches their own site-B profile best (strictly better
	// than every other candidate).
	MatchRate []float64
	// TopicsPerUser[k] is the mean number of distinct topics the
	// attacker has accumulated per user after k+1 epochs.
	TopicsPerUser []float64
}

// Simulate runs the attack.
func Simulate(cfg Config) *Result {
	cfg = cfg.withDefaults()
	tx := taxonomy.NewV2()
	cl := classifier.New(tx)
	pool := sitePool()

	res := &Result{
		Cfg:           cfg,
		MatchRate:     make([]float64, cfg.Epochs),
		TopicsPerUser: make([]float64, cfg.Epochs),
	}

	users := make([]*user, cfg.Users)
	for i := range users {
		users[i] = newUser(cfg, tx, cl, pool, i)
	}

	// setsA/B accumulate the attacker's per-user observations.
	setsA := make([]map[int]bool, cfg.Users)
	setsB := make([]map[int]bool, cfg.Users)
	for i := range setsA {
		setsA[i] = make(map[int]bool)
		setsB[i] = make(map[int]bool)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		totalTopics := 0
		for i, u := range users {
			u.browseOneEpoch()
			// The attacker's tag runs on both publishers; each call both
			// returns topics and marks the observation for next epoch.
			for _, r := range u.engine.BrowsingTopics(attacker, siteA) {
				setsA[i][r.Topic.ID] = true
			}
			for _, r := range u.engine.BrowsingTopics(attacker, siteB) {
				setsB[i][r.Topic.ID] = true
			}
			totalTopics += len(setsA[i]) + len(setsB[i])
		}
		res.TopicsPerUser[epoch] = float64(totalTopics) / float64(2*cfg.Users)
		res.MatchRate[epoch] = matchRate(setsA, setsB)
	}
	return res
}

// matchRate links every site-A profile to its best site-B candidate and
// scores strict, correct, unique matches.
func matchRate(setsA, setsB []map[int]bool) float64 {
	correct := 0
	for i, a := range setsA {
		if len(a) == 0 {
			continue
		}
		bestJ, bestScore, ties := -1, -1.0, 0
		for j, b := range setsB {
			s := jaccard(a, b)
			switch {
			case s > bestScore:
				bestScore, bestJ, ties = s, j, 1
			case s == bestScore:
				ties++
			}
		}
		if bestJ == i && ties == 1 && bestScore > 0 {
			correct++
		}
	}
	return float64(correct) / float64(len(setsA))
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// user is one simulated browser profile.
//
//topicslint:compact
type user struct {
	engine  *topics.Engine
	rng     *rand.Rand
	profile []string
	pool    []string
	churn   float64
	visits  int
	clock   time.Time
}

func newUser(cfg Config, tx *taxonomy.Taxonomy, cl *classifier.Classifier, pool []string, id int) *user {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(id)*0x9E3779B97F4A7C15+7))
	clockStart := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	u := &user{
		rng:    rng,
		pool:   pool,
		churn:  cfg.Churn,
		visits: cfg.VisitsPerEpoch,
		clock:  clockStart,
	}
	// Stable interest profile: distinct sites from the pool.
	seen := map[string]bool{}
	for len(u.profile) < cfg.ProfileSites {
		s := pool[rng.IntN(len(pool))]
		if !seen[s] {
			seen[s] = true
			u.profile = append(u.profile, s)
		}
	}
	u.engine = topics.NewEngine(tx, cl, topics.Config{
		Seed:    cfg.Seed + uint64(id)*131,
		NoNoise: cfg.NoNoise,
		Now:     func() time.Time { return u.clock },
	})
	return u
}

// browseOneEpoch simulates one week: profile-driven visits (plus churn)
// with the attacker observing on every page, then the epoch boundary.
func (u *user) browseOneEpoch() {
	for v := 0; v < u.visits; v++ {
		site := u.profile[u.rng.IntN(len(u.profile))]
		if u.rng.Float64() < u.churn {
			site = u.pool[u.rng.IntN(len(u.pool))]
		}
		u.engine.RecordVisit(site)
		// The attacker's tag is pervasive: it witnesses the user across
		// the web, which is what fills the per-caller filter.
		u.engine.Observe(site, attacker)
	}
	u.clock = u.clock.Add(topics.DefaultEpochDuration)
	u.engine.AdvanceEpoch()
}

// sitePool is the universe of sites users browse: topic-bearing names
// the classifier maps to spread-out taxonomy regions.
func sitePool() []string {
	words := []string{
		"news", "sport", "travel", "recipes", "games", "movies", "music",
		"fashion", "finance", "stocks", "auto", "garden", "pets", "chess",
		"poker", "fishing", "hiking", "yoga", "anime", "books", "science",
		"crypto", "jobs", "wedding", "dating", "coffee", "wine", "pizza",
		"hotels", "flights", "camera", "laptop", "software", "insurance",
	}
	tlds := []string{"com", "net", "org", "io"}
	var pool []string
	for i, w := range words {
		for j, t := range tlds {
			pool = append(pool, fmt.Sprintf("%s-%d.%s", w, i*len(tlds)+j, t))
		}
	}
	return pool
}
