// Package privaccept reimplements the consent-clicking logic of the
// Priv-Accept tool the paper builds on (§2.2): detect the privacy banner
// on a rendered page and find its "Accept" control by keyword matching.
//
// Like the original, it supports five languages — English, French,
// Spanish, German and Italian — and therefore fails on banners in other
// languages or with unusual wording, which is exactly the behaviour the
// paper accounts for ("Priv-Accept misses language or keyword"; reported
// accuracy 92–95%).
package privaccept

import (
	"strings"

	"github.com/netmeasure/topicscope/internal/htmlx"
)

// SupportedLanguages lists the languages Priv-Accept understands.
var SupportedLanguages = []string{"en", "fr", "es", "de", "it"}

// AcceptWords maps each supported language to the accept-button phrases
// the detector recognises. Matching is case-insensitive on the button's
// visible text.
var AcceptWords = map[string][]string{
	"en": {"accept all", "accept cookies", "accept", "i agree", "agree", "allow all", "got it"},
	"fr": {"tout accepter", "accepter tout", "accepter", "j'accepte", "autoriser"},
	"es": {"aceptar todo", "aceptar todas", "aceptar", "acepto", "permitir todas"},
	"de": {"alle akzeptieren", "akzeptieren", "alles akzeptieren", "zustimmen", "einverstanden"},
	"it": {"accetta tutto", "accetta tutti", "accetta", "accetto", "acconsento"},
}

// bannerHints are id/class substrings that mark a banner container.
var bannerHints = []string{"cookie", "consent", "privacy", "gdpr", "banner", "cmp"}

// bannerTextHints are page-text markers (per supported language) that a
// container is a privacy notice.
var bannerTextHints = []string{
	"cookie", "cookies", "consent", "privacy", "personal data",
	"données personnelles", "datos personales", "personenbezogene",
	"dati personali",
}

// Detection is the outcome of scanning a page for a privacy banner.
type Detection struct {
	// BannerFound: a privacy-banner container was identified.
	BannerFound bool
	// AcceptFound: an accept control was recognised inside it.
	AcceptFound bool
	// Language is the language whose keyword matched.
	Language string
	// AcceptText is the matched control's visible text.
	AcceptText string
}

// Detect scans a parsed page for a privacy banner and its accept
// control.
func Detect(doc *htmlx.Node) Detection {
	var det Detection
	for _, container := range bannerContainers(doc) {
		det.BannerFound = true
		if node, lang, ok := findAcceptControl(container); ok {
			det.AcceptFound = true
			det.Language = lang
			det.AcceptText = strings.TrimSpace(node.InnerText())
			return det
		}
	}
	return det
}

// bannerContainers returns candidate banner elements, in document order.
func bannerContainers(doc *htmlx.Node) []*htmlx.Node {
	var out []*htmlx.Node
	doc.Walk(func(n *htmlx.Node) bool {
		if n.Tag == "" || n.Tag == "#document" || n.Tag == "html" || n.Tag == "body" {
			return true
		}
		if isBannerish(n) {
			out = append(out, n)
			return false // do not report nested containers twice
		}
		return true
	})
	return out
}

func isBannerish(n *htmlx.Node) bool {
	id, _ := n.Attr("id")
	class, _ := n.Attr("class")
	marker := strings.ToLower(id + " " + class)
	for _, h := range bannerHints {
		if strings.Contains(marker, h) {
			return true
		}
	}
	// Fall back to text content for markerless custom banners, but only
	// for small container elements, as Priv-Accept restricts candidates.
	if n.Tag == "div" || n.Tag == "section" || n.Tag == "aside" || n.Tag == "dialog" {
		text := strings.ToLower(n.InnerText())
		if len(text) > 0 && len(text) < 600 {
			for _, h := range bannerTextHints {
				if strings.Contains(text, h) {
					return true
				}
			}
		}
	}
	return false
}

// findAcceptControl looks for a clickable element whose text matches an
// accept phrase in any supported language. Longer phrases win over
// shorter ones across languages, so French "tout accepter" is attributed
// to French even though it contains the English stem "accept".
func findAcceptControl(container *htmlx.Node) (*htmlx.Node, string, bool) {
	var found *htmlx.Node
	var lang string
	var matchLen int
	container.Walk(func(n *htmlx.Node) bool {
		if !isClickable(n) {
			return true
		}
		text := strings.ToLower(strings.TrimSpace(controlText(n)))
		if text == "" {
			return true
		}
		for _, l := range SupportedLanguages {
			for _, phrase := range AcceptWords[l] {
				if len(phrase) > matchLen && strings.Contains(text, phrase) {
					found, lang, matchLen = n, l, len(phrase)
				}
			}
		}
		return true
	})
	return found, lang, found != nil
}

// controlText is the visible label of a control: inner text, or the
// value attribute for <input> elements (which are void and carry their
// label as an attribute).
func controlText(n *htmlx.Node) string {
	if n.Tag == "input" {
		v, _ := n.Attr("value")
		return v
	}
	return n.InnerText()
}

func isClickable(n *htmlx.Node) bool {
	switch n.Tag {
	case "button", "a":
		return true
	case "input":
		t, _ := n.Attr("type")
		return t == "button" || t == "submit"
	case "div", "span":
		_, hasRole := n.Attr("role")
		_, hasClick := n.Attr("onclick")
		return hasRole || hasClick
	}
	return false
}
