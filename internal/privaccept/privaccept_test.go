package privaccept

import (
	"fmt"
	"testing"

	"github.com/netmeasure/topicscope/internal/htmlx"
)

func page(banner string) *htmlx.Node {
	return htmlx.Parse(fmt.Sprintf(`<!DOCTYPE html><html><body>
<header>My Site</header>
%s
<main><p>Welcome to the site. Lots of content about travel and hotels.</p></main>
</body></html>`, banner))
}

func TestDetectSupportedLanguages(t *testing.T) {
	cases := []struct {
		lang   string
		button string
	}{
		{"en", "Accept all"},
		{"en", "ACCEPT COOKIES"},
		{"fr", "Tout accepter"},
		{"es", "Aceptar todo"},
		{"de", "Alle akzeptieren"},
		{"it", "Accetta tutto"},
	}
	for _, c := range cases {
		doc := page(fmt.Sprintf(
			`<div id="privacy-banner"><p>We use cookies.</p><button>%s</button><button>Reject</button></div>`,
			c.button))
		det := Detect(doc)
		if !det.BannerFound || !det.AcceptFound {
			t.Errorf("%s banner %q not detected: %+v", c.lang, c.button, det)
			continue
		}
		if det.Language != c.lang {
			t.Errorf("button %q detected as %q, want %q", c.button, det.Language, c.lang)
		}
	}
}

func TestDetectUnsupportedLanguage(t *testing.T) {
	// Japanese and Russian banners must be found but not accepted —
	// the paper's Priv-Accept supports only five languages.
	for _, button := range []string{"同意する", "Принять все"} {
		doc := page(fmt.Sprintf(
			`<div class="cookie-consent"><p>...</p><button>%s</button></div>`, button))
		det := Detect(doc)
		if !det.BannerFound {
			t.Errorf("banner with %q not found", button)
		}
		if det.AcceptFound {
			t.Errorf("unsupported-language button %q accepted", button)
		}
	}
}

func TestDetectObscureWording(t *testing.T) {
	doc := page(`<div id="cookie-notice"><p>We value your privacy.</p>
		<button>Continue with recommended settings</button></div>`)
	det := Detect(doc)
	if !det.BannerFound {
		t.Error("banner not found")
	}
	if det.AcceptFound {
		t.Error("obscure wording must not match")
	}
}

func TestNoBanner(t *testing.T) {
	det := Detect(page(""))
	if det.BannerFound || det.AcceptFound {
		t.Errorf("phantom banner: %+v", det)
	}
}

func TestTextHintContainer(t *testing.T) {
	// A markerless custom banner is found via its text.
	doc := page(`<div class="notice-bar"><p>This site uses cookies to improve your experience.</p>
		<a href="#" onclick="ok()">I agree</a></div>`)
	det := Detect(doc)
	if !det.BannerFound || !det.AcceptFound || det.Language != "en" {
		t.Errorf("custom banner not handled: %+v", det)
	}
}

func TestLongPhrasesWinOverShort(t *testing.T) {
	doc := page(`<div id="consent"><button>Accept all cookies</button></div>`)
	det := Detect(doc)
	if !det.AcceptFound || det.Language != "en" {
		t.Fatalf("detection failed: %+v", det)
	}
}

func TestClickableKinds(t *testing.T) {
	variants := []string{
		`<button>Accept</button>`,
		`<a href="#">Accept</a>`,
		`<input type="submit" value="Accept">`,
		`<div role="button">Accept</div>`,
		`<span onclick="go()">Accept</span>`,
	}
	for _, v := range variants {
		doc := page(`<div id="cookie-banner">` + v + `</div>`)
		if det := Detect(doc); !det.AcceptFound {
			t.Errorf("clickable variant %q not detected", v)
		}
	}
	// Plain text inside the banner must not count as a control.
	doc := page(`<div id="cookie-banner"><p>Click accept below</p></div>`)
	if det := Detect(doc); det.AcceptFound {
		t.Error("non-clickable text matched as accept control")
	}
}

func TestRejectOnlyBanner(t *testing.T) {
	doc := page(`<div id="cookie-banner"><button>Reject</button><button>Settings</button></div>`)
	det := Detect(doc)
	if !det.BannerFound || det.AcceptFound {
		t.Errorf("reject-only banner: %+v", det)
	}
}

func TestAllWordlistsNonEmpty(t *testing.T) {
	if len(SupportedLanguages) != 5 {
		t.Errorf("Priv-Accept supports five languages, got %d", len(SupportedLanguages))
	}
	for _, l := range SupportedLanguages {
		if len(AcceptWords[l]) == 0 {
			t.Errorf("no accept words for %q", l)
		}
	}
}
