package cmpdb

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCatalogHasFifteenCMPs(t *testing.T) {
	// Figure 7 plots exactly 15 consent managers.
	if got := len(All()); got != 15 {
		t.Errorf("catalog has %d CMPs, Figure 7 has 15", got)
	}
}

func TestPlottingOrderMatchesPaper(t *testing.T) {
	want := []string{
		"OneTrust", "HubSpot", "LiveRamp", "Cookiebot", "TrustArc",
		"Didomi", "Sourcepoint", "Osano", "Iubenda", "CookieYes",
		"Usercentrics", "CookieScript", "Civic", "Cookie Information", "SFBX",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	c, ok := ByName("hubspot")
	if !ok || c.Name != "HubSpot" {
		t.Errorf("ByName(hubspot) = %+v, %v", c, ok)
	}
	if _, ok := ByName("NotACMP"); ok {
		t.Error("unknown CMP resolved")
	}
}

func TestByDomain(t *testing.T) {
	cases := []struct {
		domain string
		want   string
		ok     bool
	}{
		{"onetrust.com", "OneTrust", true},
		{"cdn.cookielaw.onetrust.com", "OneTrust", true},
		{"cookiebot.com", "Cookiebot", true},
		{"consent.cookiebot.com", "Cookiebot", true},
		{"evilonetrust.com", "", false},
		{"example.com", "", false},
	}
	for _, c := range cases {
		got, ok := ByDomain(c.domain)
		if ok != c.ok || (ok && got.Name != c.want) {
			t.Errorf("ByDomain(%q) = %+v, %v; want %q, %v", c.domain, got, ok, c.want, c.ok)
		}
	}
}

func TestHubSpotAndLiveRampElevated(t *testing.T) {
	// The paper: P(questionable | HubSpot) ≈ 12%, "twice as big as the
	// average probability. The same holds true for Liveramp."
	base := BaselineMisconfigRate()
	for _, name := range []string{"HubSpot", "LiveRamp"} {
		c, _ := ByName(name)
		if c.MisconfigRate < 1.8*base {
			t.Errorf("%s misconfig rate %.3f not ≈2× baseline %.3f", name, c.MisconfigRate, base)
		}
	}
	one, _ := ByName("OneTrust")
	if one.MisconfigRate > 1.3*base {
		t.Errorf("OneTrust misconfig rate %.3f should be near baseline %.3f", one.MisconfigRate, base)
	}
}

func TestPickFollowsShares(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	counts := map[string]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[Pick(rng).Name]++
	}
	total := totalShare()
	for _, c := range All() {
		got := float64(counts[c.Name]) / n
		want := c.Share / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pick frequency for %s = %.3f, want %.3f", c.Name, got, want)
		}
	}
}

func TestSharesSumToOne(t *testing.T) {
	if s := totalShare(); math.Abs(s-1) > 0.05 {
		t.Errorf("shares sum to %f", s)
	}
}

func TestValidatePanicsOnBadCatalog(t *testing.T) {
	orig := catalog
	defer func() { catalog = orig }()

	catalog = []CMP{{Name: "", Domain: "x.com", Share: 0.5, MisconfigRate: 0.05}}
	assertPanic(t, "empty name")

	catalog = []CMP{
		{Name: "A", Domain: "a.com", Share: 0.5, MisconfigRate: 0.05},
		{Name: "A", Domain: "b.com", Share: 0.5, MisconfigRate: 0.05},
	}
	assertPanic(t, "duplicate")

	catalog = []CMP{{Name: "A", Domain: "a.com", Share: 0.5, MisconfigRate: 0.05}}
	assertPanic(t, "shares not summing to 1")
}

func assertPanic(t *testing.T, what string) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("validate did not panic for %s", what)
		}
	}()
	validate()
}
