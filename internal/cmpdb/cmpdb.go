// Package cmpdb catalogues Consent Management Platforms (CMPs).
//
// Paper §5: CMPs are commercial products that implement Privacy Banners
// and gate embedded third parties until the user consents. The paper
// identifies the CMP in use on each website via its domain (the
// Wappalyzer list) and shows in Figure 7 that questionable Topics API
// calls are roughly independent of the CMP — except HubSpot (≈3× over-
// represented among questionable calls; P(questionable|HubSpot) ≈ 12%,
// twice the average) and LiveRamp (similarly elevated).
//
// Each catalog entry carries the two rates the synthetic web needs: the
// CMP's market share among CMP-using sites, and its misconfiguration
// rate — the probability that a site using it still lets third parties
// run before consent ("shallow-but-in-good-faith" deployments, bad
// defaults, or an incomplete configuration).
package cmpdb

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"github.com/netmeasure/topicscope/internal/etld"
)

// CMP describes one consent-management platform.
type CMP struct {
	// Name is the display name used on the Figure 7 axis.
	Name string
	// Domain is the domain whose presence identifies the CMP on a page,
	// as in the Wappalyzer fingerprint list.
	Domain string
	// Share is the CMP's market share among CMP-using websites; catalog
	// shares sum to 1.
	Share float64
	// MisconfigRate is the probability a site deploying this CMP still
	// lets ad tags (and hence the Topics API) run in the Before-Accept
	// visit: incomplete configurations, bad defaults, or simply no
	// Topics-aware gating — the paper notes "the complexity of
	// configuring and managing the privacy options has yet to properly
	// integrate the support for the Topics API" (§5).
	MisconfigRate float64
}

// catalog lists the 15 CMPs of Figure 7 in the paper's plotting order.
var catalog = []CMP{
	{Name: "OneTrust", Domain: "onetrust.com", Share: 0.22, MisconfigRate: 0.32},
	{Name: "HubSpot", Domain: "hubspot.com", Share: 0.07, MisconfigRate: 0.85},
	{Name: "LiveRamp", Domain: "liveramp.com", Share: 0.05, MisconfigRate: 0.85},
	{Name: "Cookiebot", Domain: "cookiebot.com", Share: 0.11, MisconfigRate: 0.33},
	{Name: "TrustArc", Domain: "trustarc.com", Share: 0.06, MisconfigRate: 0.36},
	{Name: "Didomi", Domain: "didomi.io", Share: 0.07, MisconfigRate: 0.30},
	{Name: "Sourcepoint", Domain: "sourcepoint.com", Share: 0.05, MisconfigRate: 0.36},
	{Name: "Osano", Domain: "osano.com", Share: 0.04, MisconfigRate: 0.38},
	{Name: "Iubenda", Domain: "iubenda.com", Share: 0.06, MisconfigRate: 0.30},
	{Name: "CookieYes", Domain: "cookieyes.com", Share: 0.06, MisconfigRate: 0.36},
	{Name: "Usercentrics", Domain: "usercentrics.eu", Share: 0.07, MisconfigRate: 0.30},
	{Name: "CookieScript", Domain: "cookie-script.com", Share: 0.04, MisconfigRate: 0.36},
	{Name: "Civic", Domain: "civiccomputing.com", Share: 0.03, MisconfigRate: 0.36},
	{Name: "Cookie Information", Domain: "cookieinformation.com", Share: 0.03, MisconfigRate: 0.33},
	{Name: "SFBX", Domain: "sfbx.io", Share: 0.03, MisconfigRate: 0.36},
}

// All returns the catalog in the paper's plotting order. The slice is
// shared; do not modify it.
func All() []CMP { return catalog }

// Names returns the CMP names in plotting order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, c := range catalog {
		out[i] = c.Name
	}
	return out
}

// ByName finds a CMP by display name (case-insensitive).
func ByName(name string) (CMP, bool) {
	for _, c := range catalog {
		if strings.EqualFold(c.Name, name) {
			return c, true
		}
	}
	return CMP{}, false
}

// ByDomain identifies the CMP from a domain seen on a page, matching the
// Wappalyzer-style fingerprinting the paper uses ("We rely on the list of
// the most widespread CMPs (identified by their domain name)").
func ByDomain(domain string) (CMP, bool) {
	domain = etld.Normalize(domain)
	for _, c := range catalog {
		if domain == c.Domain || strings.HasSuffix(domain, "."+c.Domain) {
			return c, true
		}
	}
	return CMP{}, false
}

// Pick draws a CMP according to market share.
func Pick(rng *rand.Rand) CMP {
	x := rng.Float64() * totalShare()
	for _, c := range catalog {
		if x < c.Share {
			return c
		}
		x -= c.Share
	}
	return catalog[len(catalog)-1]
}

// BaselineMisconfigRate returns the catalog-average misconfiguration
// rate weighted by share.
func BaselineMisconfigRate() float64 {
	var sum, w float64
	for _, c := range catalog {
		sum += c.Share * c.MisconfigRate
		w += c.Share
	}
	return sum / w
}

func totalShare() float64 {
	var s float64
	for _, c := range catalog {
		s += c.Share
	}
	return s
}

// validate panics on an inconsistent catalog; run from init so a bad
// edit fails every test immediately.
func validate() {
	seen := map[string]bool{}
	for _, c := range catalog {
		if c.Name == "" || c.Domain == "" {
			panic("cmpdb: entry with empty name or domain")
		}
		if seen[c.Name] {
			panic(fmt.Sprintf("cmpdb: duplicate CMP %q", c.Name))
		}
		seen[c.Name] = true
		if c.Share <= 0 || c.Share >= 1 {
			panic(fmt.Sprintf("cmpdb: %s share %f out of range", c.Name, c.Share))
		}
		if c.MisconfigRate < 0 || c.MisconfigRate > 0.9 {
			panic(fmt.Sprintf("cmpdb: %s misconfig rate %f out of range", c.Name, c.MisconfigRate))
		}
	}
	if s := totalShare(); s < 0.95 || s > 1.05 {
		panic(fmt.Sprintf("cmpdb: shares sum to %f, want ≈1", s))
	}
}

func init() { validate() }
