package topicscope

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/netmeasure/topicscope/internal/adcatalog"
	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/attestation"
	"github.com/netmeasure/topicscope/internal/browser"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/classifier"
	"github.com/netmeasure/topicscope/internal/crawler"
	"github.com/netmeasure/topicscope/internal/dataset"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/etld"
	"github.com/netmeasure/topicscope/internal/load"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/reident"
	"github.com/netmeasure/topicscope/internal/taxonomy"
	"github.com/netmeasure/topicscope/internal/topics"
	"github.com/netmeasure/topicscope/internal/tranco"
	"github.com/netmeasure/topicscope/internal/webserver"
	"github.com/netmeasure/topicscope/internal/webworld"
)

// ---- Synthetic web ----

// World is the generated synthetic web (see DESIGN.md, Substitutions).
type (
	World       = webworld.World
	WorldConfig = webworld.Config
	Site        = webworld.Site
	WorldStats  = webworld.Stats
)

// GenerateWorld builds the deterministic synthetic web.
func GenerateWorld(cfg WorldConfig) *World { return webworld.Generate(cfg) }

// SaveWorld / LoadWorld persist a world spec as JSON so a crawl target
// can be inspected or served without regenerating.
func SaveWorld(w *World, out io.Writer) error { return w.Save(out) }
func LoadWorld(in io.Reader) (*World, error)  { return webworld.Load(in) }

// ---- Serving ----

// Server virtual-hosts the synthetic web over HTTP.
type Server = webserver.Server

// NewServer builds a Server; now supplies virtual time (nil = wall
// clock).
func NewServer(w *World, now func() time.Time) *Server { return webserver.New(w, now) }

// NewTCPClient dials every hostname to addr, for crawling a server
// started with topics-serve.
func NewTCPClient(w *World, addr string, timeout time.Duration) *http.Client {
	return webserver.NewTCPClient(w, addr, timeout)
}

// CertAuthority mints per-host certificates for serving the synthetic
// web over TLS; NewTLSClient is the HTTPS counterpart of NewTCPClient.
type CertAuthority = webserver.CertAuthority

// NewCertAuthority creates an in-memory CA anchored at notBefore (zero =
// now).
func NewCertAuthority(notBefore time.Time) (*CertAuthority, error) {
	return webserver.NewCertAuthority(notBefore)
}

// NewTLSClient dials every hostname to addr over TLS with per-host SNI,
// verified against the CA; HTTP/2 is negotiated via ALPN.
func NewTLSClient(w *World, addr string, ca *CertAuthority, timeout time.Duration) *http.Client {
	return webserver.NewTLSClient(w, addr, ca, timeout)
}

// NewTLSClientFromPEM is NewTLSClient for out-of-process servers: trust
// the CA certificate PEM that topics-serve -tls wrote.
func NewTLSClientFromPEM(w *World, addr string, caPEM []byte, timeout time.Duration) (*http.Client, error) {
	return webserver.NewTLSClientFromPEM(w, addr, caPEM, timeout)
}

// ---- Chaos / fault injection ----

// Chaos is the seeded, deterministic fault injector reproducing the
// unreliable Internet of §2.4, and the crawl error taxonomy.
type (
	ChaosConfig   = chaos.Config
	ChaosStats    = chaos.Stats
	ChaosSnapshot = chaos.StatsSnapshot
	ChaosClass    = chaos.Class
	ChaosInjector = chaos.Injector
	ChaosHandler  = chaos.Handler
)

// DefaultChaos returns the paper-calibrated fault profile (layered on
// the world's 86.8% reachable rate).
func DefaultChaos(seed uint64) ChaosConfig { return webworld.DefaultChaos(seed) }

// NewChaosInjector wraps a client-side transport with fault injection.
func NewChaosInjector(cfg ChaosConfig, next http.RoundTripper) *ChaosInjector {
	return chaos.NewInjector(cfg, next)
}

// NewChaosHandler wraps a server-side handler with fault injection.
func NewChaosHandler(cfg ChaosConfig, next http.Handler) *ChaosHandler {
	return chaos.NewHandler(cfg, next)
}

// EnableChaos wraps a client's transport with fault injection in place
// and returns the injector (for its stats).
func EnableChaos(client *http.Client, cfg ChaosConfig) *ChaosInjector {
	in := chaos.NewInjector(cfg, client.Transport)
	client.Transport = in
	return in
}

// ClassifyError maps any crawl error onto the error taxonomy.
func ClassifyError(err error) ChaosClass { return chaos.Classify(err) }

// MetricsPath is the debug endpoint topics-serve exposes.
const MetricsPath = webserver.MetricsPath

// MetricsHandler renders server, chaos and observability counters in
// Prometheus text format (chaosStats and reg may be nil).
func MetricsHandler(s *Server, chaosStats *ChaosStats, reg *MetricsRegistry) http.Handler {
	return webserver.MetricsHandler(s, chaosStats, reg)
}

// ---- Observability ----

// Deterministic tracing and metrics (internal/obs): spans are timed on
// a per-visit stage clock, so trace JSONL is byte-identical across runs
// and GOMAXPROCS; registries merge commutatively like analysis shards.
type (
	MetricsRegistry = obs.Registry
	TraceSpan       = obs.Span
	TraceAttr       = obs.Attr
	TraceRecord     = obs.VisitTrace
	TraceSink       = obs.Sink
	TraceTee        = obs.Tee
	TraceWriter     = obs.TraceWriter
	TraceSummary    = obs.Summary
	StageSummary    = obs.StageSummary
	StageRow        = obs.StageRow
)

// NewMetricsRegistry builds an empty observability registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceWriter streams trace records as deterministic JSONL.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewTraceWriter(w) }

// NewTraceSummary builds an empty trace summary (a TraceSink that folds
// traces into campaign-level aggregates).
func NewTraceSummary() *TraceSummary { return obs.NewSummary() }

// ReadTraces streams every record of a trace JSONL reader to fn.
func ReadTraces(r io.Reader, fn func(*TraceRecord) error) error {
	return obs.ReadTraces(r, fn)
}

// ObsHandler serves a registry in Prometheus text format (the
// crawler-side /__metrics endpoint).
func ObsHandler(reg *MetricsRegistry) http.Handler { return obs.Handler(reg) }

// DebugMux serves a registry at /__metrics plus net/http/pprof under
// /debug/pprof/ — the handler behind the -pprof flags.
func DebugMux(reg *MetricsRegistry) *http.ServeMux { return obs.DebugMux(reg) }

// ---- Browser & crawling ----

// Browser is the instrumented emulated browser.
type (
	Browser       = browser.Browser
	BrowserConfig = browser.Config
	PageVisit     = browser.PageVisit
)

// NewBrowser builds an instrumented browser.
func NewBrowser(cfg BrowserConfig) *Browser { return browser.New(cfg) }

// Crawler runs measurement campaigns.
type (
	Crawler       = crawler.Crawler
	CrawlerConfig = crawler.Config
	CrawlStats    = crawler.Stats
	CrawlResult   = crawler.Result
)

// NewCrawler builds a Crawler.
func NewCrawler(cfg CrawlerConfig) *Crawler { return crawler.New(cfg) }

// CallerDomains extracts the distinct calling parties of a dataset.
func CallerDomains(d *Dataset) []string { return crawler.CallerDomains(d) }

// ---- Dataset ----

// Dataset records and codecs.
type (
	Dataset           = dataset.Dataset
	Visit             = dataset.Visit
	TopicsCall        = dataset.TopicsCall
	Resource          = dataset.Resource
	CallType          = dataset.CallType
	Phase             = dataset.Phase
	DatasetWriter     = dataset.Writer
	AttestationRecord = dataset.AttestationRecord
)

// Phases and call types.
const (
	BeforeAccept = dataset.BeforeAccept
	AfterAccept  = dataset.AfterAccept

	CallJavaScript = dataset.CallJavaScript
	CallFetch      = dataset.CallFetch
	CallIframe     = dataset.CallIframe
)

// LoadDataset reads a JSONL crawl from disk.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// CompletedSites returns the sites already recorded in a JSONL crawl
// file, for resuming an interrupted campaign. Truncated or corrupt
// trailing records are salvaged, never fatal: the valid prefix decides.
func CompletedSites(path string) (map[string]bool, error) { return dataset.CompletedSites(path) }

// ---- Crash-safe persistence ----

// Crash-safe journal types (see DESIGN.md, "Crash safety"): a
// DatasetJournal is a Visit sink whose writes are framed, checkpointed
// and recoverable after kill -9; the Manifest is the fsync'd checkpoint
// record that makes resume O(tail).
type (
	DatasetJournal = dataset.JournalWriter
	JournalOptions = dataset.JournalOptions
	ResumeState    = dataset.ResumeState
	Manifest       = durable.Manifest
)

// DefaultCheckpointEvery is the journal's default checkpoint cadence:
// sites completed between durable checkpoints.
const DefaultCheckpointEvery = dataset.DefaultCheckpointEvery

// CreateJournal starts a fresh crash-safe dataset journal at path
// (gzip-compressed when the path ends in .gz).
func CreateJournal(path string, opts JournalOptions) (*DatasetJournal, error) {
	return dataset.CreateJournal(path, opts)
}

// ResumeJournal reopens an interrupted journal: it truncates to the
// last checkpoint, replays the tail, drops torn site groups, and
// returns the writer positioned to append plus what survived.
func ResumeJournal(path string, opts JournalOptions) (*DatasetJournal, *ResumeState, error) {
	return dataset.ResumeJournal(path, opts)
}

// LoadManifest reads the checkpoint manifest beside a journal; nil
// means no usable manifest (resume falls back to a full scan).
func LoadManifest(journalPath string) *Manifest { return durable.LoadManifest(journalPath) }

// WriteFileAtomic writes a whole-file artifact via the
// temp-file/fsync/rename discipline, so readers observe either the old
// file or the complete new one — never a torn write.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return durable.WriteFileAtomic(path, write)
}

// ---- Topics engine ----

// Topics API engine, taxonomy and classifier.
type (
	Engine       = topics.Engine
	EngineConfig = topics.Config
	TopicResult  = topics.Result
	Taxonomy     = taxonomy.Taxonomy
	Topic        = taxonomy.Topic
	Classifier   = classifier.Classifier
)

// NewTaxonomy returns the embedded Topics taxonomy (v2).
func NewTaxonomy() *Taxonomy { return taxonomy.NewV2() }

// NewClassifier builds the site-to-topics model over a taxonomy.
func NewClassifier(tx *Taxonomy) *Classifier { return classifier.New(tx) }

// NewEngine builds the browser-side Topics engine.
func NewEngine(tx *Taxonomy, cl *Classifier, cfg EngineConfig) *Engine {
	return topics.NewEngine(tx, cl, cfg)
}

// ---- Enrolment artifacts ----

// Allow-list, attestations and the caller gate.
type (
	Allowlist       = attestation.Allowlist
	AttestationFile = attestation.File
	Gate            = attestation.Gate
)

// WellKnownPath is the attestation file's fixed URL path.
const WellKnownPath = attestation.WellKnownPath

// NewAllowlist builds an in-memory allow-list.
func NewAllowlist(domains ...string) *Allowlist { return attestation.NewAllowlist(domains...) }

// NewEnforcingGate is the healthy browser check; NewCorruptedGate is the
// §2.3 default-allow bug configuration the paper's crawler uses.
func NewEnforcingGate(list *Allowlist) *Gate { return attestation.NewEnforcingGate(list) }

// NewCorruptedGate builds the buggy default-allow gate.
func NewCorruptedGate() *Gate { return attestation.NewCorruptedGate() }

// ---- Rank lists ----

// RankList is a Tranco-style top-sites list.
type RankList = tranco.List

// LoadRankList parses a Tranco CSV from disk.
func LoadRankList(path string) (*RankList, error) { return tranco.LoadFile(path) }

// ---- Analysis ----

// Analysis inputs and outputs.
type (
	AnalysisInput = analysis.Input
	AnalysisIndex = analysis.Index
	Report        = analysis.Report
	Alternation   = analysis.Alternation
)

// Analyze computes every experiment over a dataset. The input's
// analysis index is built once (one parallel pass over the visits) and
// reused by every experiment; further Compute* calls on the same input
// answer from the same index.
func Analyze(in *AnalysisInput) *Report { return analysis.Run(in) }

// BuildAnalysisIndex aggregates a dataset into the single-pass analysis
// index ahead of time — useful to front-load the scan before fanning
// experiments out. Analyze and the Compute* helpers build it lazily, so
// calling this is never required.
func BuildAnalysisIndex(in *AnalysisInput) *AnalysisIndex { return in.Index() }

// AnalyzeAlternation summarises a repeated-visit ON/OFF series
// (experiment S1).
func AnalyzeAlternation(series []bool) Alternation { return analysis.AnalyzeAlternation(series) }

// CompareEnabledRates contrasts two Figure 3 computations over the same
// population at different times (experiment L1).
func CompareEnabledRates(a, b *analysis.Figure3) *analysis.Longitudinal {
	return analysis.CompareEnabledRates(a, b)
}

// ComputeFigure3 runs the Figure 3 experiment alone (used with
// CompareEnabledRates for longitudinal snapshots).
func ComputeFigure3(in *AnalysisInput, minPresence, topN int) *analysis.Figure3 {
	return analysis.ComputeFigure3(in, minPresence, topN)
}

// ComputeOverview runs the dataset-overview experiment (D1) alone.
func ComputeOverview(in *AnalysisInput) *analysis.Overview {
	return analysis.ComputeOverview(in)
}

// ComputeTrajectory returns the campaign's virtual-week trajectory
// (experiment L1's live form), folded incrementally into the index.
func ComputeTrajectory(in *AnalysisInput) *analysis.Trajectory {
	return analysis.ComputeTrajectory(in)
}

// ---- Incremental (live) analysis ----

// Incremental analysis types (see DESIGN.md, "Incremental analysis"):
// a LiveAnalysisIndex folds the analysis index one committed record at
// a time; LiveAnalysisStats reports the O(tail + snapshot) cost of
// assembling one; FrameIndex is the sparse rank/record → byte-offset
// index kept beside a journal for seeking into multi-GB datasets.
type (
	LiveAnalysisIndex = analysis.LiveIndex
	LiveAnalysisSink  = analysis.LiveSink
	LiveAnalysisStats = analysis.LiveStats
	FrameIndex        = durable.FrameIndex
	FrameEntry        = durable.FrameEntry
	RangeStats        = dataset.RangeStats
	Trajectory        = analysis.Trajectory
)

// NewLiveAnalysisIndex returns an empty fold accumulator over the
// input's allow-list. Fold every visit into it, then Snapshot an
// AnalysisIndex at any point without stopping the fold.
func NewLiveAnalysisIndex(in *AnalysisInput) *LiveAnalysisIndex {
	return analysis.NewLiveIndex(in)
}

// NewLiveAnalysisSink builds the journal observer that maintains a live
// index and serializes it beside the journal (<path>.idx) at every
// committed checkpoint; pass it as JournalOptions.Observer.
func NewLiveAnalysisSink(journalPath string, in *AnalysisInput) *LiveAnalysisSink {
	return analysis.NewLiveSink(journalPath, in)
}

// OpenLiveAnalysisSink builds the observer for a journal about to be
// resumed: the checkpoint snapshot is restored when it matches the
// manifest, else the committed prefix is re-folded from byte 0
// (salvage, never error). ResumeJournal replays the salvaged tail
// through the observer itself.
func OpenLiveAnalysisSink(journalPath string, in *AnalysisInput) (*LiveAnalysisSink, *LiveAnalysisStats, error) {
	return analysis.OpenLiveSink(journalPath, in)
}

// LoadLiveAnalysisIndex assembles the fold accumulator for a (possibly
// still growing) journal from its checkpoint snapshot plus the
// uncommitted tail — O(tail + snapshot) bytes, degrading to a full
// folding scan when the snapshot is unusable.
func LoadLiveAnalysisIndex(journalPath string, in *AnalysisInput) (*LiveAnalysisIndex, *LiveAnalysisStats, error) {
	return analysis.LoadLiveIndex(journalPath, in)
}

// LoadLiveAnalysis is LoadLiveAnalysisIndex plus finalization: the
// returned index equals what BuildAnalysisIndex over the journal's full
// record stream builds. Adopt it with AdoptAnalysisIndex.
func LoadLiveAnalysis(journalPath string, in *AnalysisInput) (*AnalysisIndex, *LiveAnalysisStats, error) {
	return analysis.LoadLive(journalPath, in)
}

// AdoptAnalysisIndex installs an externally assembled index (a live
// snapshot or a shard merge) as the input's index, so Analyze and the
// Compute* helpers reuse it instead of re-scanning the dataset.
func AdoptAnalysisIndex(in *AnalysisInput, idx *AnalysisIndex) bool {
	return in.AdoptIndex(idx)
}

// LoadFrameIndex reads the sparse frame index beside a journal; nil
// means no usable index (readers fall back to scanning from byte 0).
func LoadFrameIndex(journalPath string) *FrameIndex {
	return durable.LoadFrameIndex(journalPath)
}

// ReadRecordRange streams journal records [from, to) (append order,
// to < 0 = through the end) into fn, seeking via the frame index when
// one is usable.
func ReadRecordRange(path string, from, to int64, fn func(*Visit) error) (*RangeStats, error) {
	return dataset.ReadRecordRange(path, from, to, fn)
}

// ReadRankRange streams every record with site rank >= fromRank into
// fn, seeking via the frame index's completed-site watermarks.
func ReadRankRange(path string, fromRank int, fn func(*Visit) error) (*RangeStats, error) {
	return dataset.ReadRankRange(path, fromRank, fn)
}

// ---- Platforms & hosts ----

// AdPlatform describes one calling party of the catalog.
type AdPlatform = adcatalog.Platform

// RegistrableDomain returns the eTLD+1 of a hostname.
func RegistrableDomain(host string) string { return etld.RegistrableDomain(host) }

// ---- Persistence helpers ----

// NewDatasetWriter streams visit records as JSONL.
func NewDatasetWriter(w io.Writer) *DatasetWriter { return dataset.NewWriter(w) }

// SaveAttestations / LoadAttestations persist attestation records as
// JSONL.
func SaveAttestations(path string, recs []AttestationRecord) error {
	return dataset.SaveAttestations(path, recs)
}

// LoadAttestations reads attestation records from JSONL.
func LoadAttestations(path string) ([]AttestationRecord, error) {
	return dataset.LoadAttestations(path)
}

// AttestationIndex indexes attestation records by domain.
func AttestationIndex(recs []AttestationRecord) map[string]AttestationRecord {
	return dataset.AttestationIndex(recs)
}

// SaveAllowlist writes an allow-list in the browser's .dat format,
// atomically: a crash mid-write leaves the previous file intact instead
// of a torn database (which the browser treats as corrupted — see
// LoadAllowlist).
func SaveAllowlist(path string, list *Allowlist) error {
	err := durable.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := list.WriteTo(w)
		return werr
	})
	if err != nil {
		return fmt.Errorf("topicscope: writing %s: %w", path, err)
	}
	return nil
}

// LoadAllowlist reads an allow-list .dat file; the error is an
// *attestation.ErrCorrupted for damaged databases — feed both values to
// attestation.NewGate to reproduce the browser's behaviour.
func LoadAllowlist(path string) (*Allowlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topicscope: opening %s: %w", path, err)
	}
	defer f.Close()
	return attestation.ReadAllowlist(f)
}

// NewGate builds the browser's caller gate from an allow-list load
// outcome, reproducing the §2.3 corrupted-database default-allow bug.
func NewGate(list *Allowlist, loadErr error) *Gate {
	return attestation.NewGate(list, loadErr)
}

// ---- Re-identification extension ----

// ReidentConfig / ReidentResult expose the §2.1-cited re-identification
// attack simulation (internal/reident).
type (
	ReidentConfig = reident.Config
	ReidentResult = reident.Result
)

// SimulateReident runs the cross-site re-identification attack against
// the Topics engine and reports match rates per observation epoch.
func SimulateReident(cfg ReidentConfig) *ReidentResult { return reident.Simulate(cfg) }

// ---- Serving-path load harness ----

// LoadConfig / LoadReport expose the deterministic open-loop load
// generator (internal/load): seeded arrivals on the virtual clock,
// a page/topics/attest request mix over the world model, and latency
// histograms whose report is byte-identical across GOMAXPROCS and
// worker counts.
type (
	LoadConfig    = load.Config
	LoadMix       = load.Mix
	LoadArrival   = load.Arrival
	LoadReport    = load.Report
	LoadPathStats = load.PathStats
	LoadSLO       = load.SLO
)

// Load arrival processes.
const (
	LoadArrivalPoisson = load.ArrivalPoisson
	LoadArrivalUniform = load.ArrivalUniform
)

// RunLoad executes one load run against the serving path and returns
// the aggregated report (virtual req/s, p50/p99/p999 per path).
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return load.Run(cfg) }
