package topicscope_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/netmeasure/topicscope"
)

// goldenPath holds the committed end-to-end pipeline fixture.
// Regenerate with `make golden` after an intentional output change.
const goldenPath = "testdata/golden_pipeline.json"

// goldenPipeline is the committed shape: the full report plus the trace
// summary and a digest pinning the trace JSONL byte format.
type goldenPipeline struct {
	Report       *topicscope.Report       `json:"report"`
	TraceSummary *topicscope.TraceSummary `json:"traceSummary"`
	TraceRecords int                      `json:"traceRecords"`
	TraceSHA256  string                   `json:"traceSha256"`
}

// TestPipelineGolden runs the whole pipeline in-process — world
// generation, serving, the chaos-injected two-phase crawl of 1k sites,
// attestation checks, analysis, report — and compares every output
// (report JSON, trace summary, trace-stream digest) against the
// committed golden file. Any behaviour change anywhere in the pipeline
// shows up as a diff here; if the change is intentional, regenerate
// with `make golden` and review the diff in version control.
func TestPipelineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-pipeline golden test")
	}
	var traces bytes.Buffer
	results, err := topicscope.Campaign{
		Seed:      11,
		Sites:     1000,
		Workers:   8,
		Chaos:     true,
		ChaosSeed: 5,
		Trace:     &traces,
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	sum := sha256.Sum256(traces.Bytes())
	nTraces, _, _, _, _ := results.TraceSummary.Counts()
	got := goldenPipeline{
		Report:       results.Report,
		TraceSummary: results.TraceSummary,
		TraceRecords: nTraces,
		TraceSHA256:  hex.EncodeToString(sum[:]),
	}
	gotJSON, err := json.MarshalIndent(&got, "", "  ")
	if err != nil {
		t.Fatalf("encoding golden: %v", err)
	}
	gotJSON = append(gotJSON, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden regenerated: %s (%d bytes)", goldenPath, len(gotJSON))
		return
	}

	wantJSON, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate with `make golden`)", goldenPath, err)
	}
	var gotAny, wantAny any
	if err := json.Unmarshal(gotJSON, &gotAny); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantJSON, &wantAny); err != nil {
		t.Fatalf("parsing %s: %v (regenerate with `make golden`)", goldenPath, err)
	}
	if reflect.DeepEqual(gotAny, wantAny) {
		return
	}
	gotLines := bytes.Split(gotJSON, []byte("\n"))
	wantLines := bytes.Split(wantJSON, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("pipeline output diverges from %s at line %d:\n got: %s\nwant: %s\n(if intentional, regenerate with `make golden`)",
				goldenPath, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("pipeline output length diverges from %s: %d vs %d lines (if intentional, regenerate with `make golden`)",
		goldenPath, len(gotLines), len(wantLines))
}
