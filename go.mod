module github.com/netmeasure/topicscope

go 1.23
