package topicscope_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"github.com/netmeasure/topicscope"
)

// TestTraceDeterminismAcrossGOMAXPROCS is the trace-stream counterpart
// of TestReportDeterminismAcrossGOMAXPROCS: a seeded chaos-injected
// campaign emits byte-identical trace JSONL across repeated runs and
// across GOMAXPROCS/worker settings. Every span sits on a deterministic
// stage clock and traces leave the crawler through the same rank-ordered
// consumer as the dataset, so scheduling must never reach the bytes.
func TestTraceDeterminismAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-campaign trace determinism test")
	}
	run := func(procs, workers int) []byte {
		t.Helper()
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		var traces bytes.Buffer
		_, err := topicscope.Campaign{
			Seed:      7,
			Sites:     400,
			Workers:   workers,
			Chaos:     true,
			ChaosSeed: 3,
			Trace:     &traces,
		}.Run(context.Background())
		if err != nil {
			t.Fatalf("campaign (GOMAXPROCS=%d workers=%d): %v", procs, workers, err)
		}
		return traces.Bytes()
	}

	serial := run(1, 2)
	parallel := run(8, 8)
	repeat := run(8, 8)

	diff := func(label string, a, b []byte) {
		t.Helper()
		if bytes.Equal(a, b) {
			return
		}
		aLines := bytes.Split(a, []byte("\n"))
		bLines := bytes.Split(b, []byte("\n"))
		for i := 0; i < len(aLines) && i < len(bLines); i++ {
			if !bytes.Equal(aLines[i], bLines[i]) {
				t.Fatalf("%s: trace JSONL diverges at line %d:\n a: %s\n b: %s", label, i+1, aLines[i], bLines[i])
			}
		}
		t.Fatalf("%s: trace JSONL lengths diverge: %d vs %d bytes", label, len(a), len(b))
	}
	diff("GOMAXPROCS=1/workers=2 vs GOMAXPROCS=8/workers=8", serial, parallel)
	diff("repeated identical runs", parallel, repeat)

	if len(serial) == 0 {
		t.Fatal("campaign emitted no trace bytes")
	}
}
