// Command topics-crawl runs the paper's measurement campaign over the
// synthetic web: Before-Accept and After-Accept visits of every ranked
// site with the corrupted allow-list gate, followed by well-known
// attestation checks. It writes the visit dataset (JSONL), the
// attestation records (JSONL) and the healthy allow-list (.dat) that
// topics-analyze needs.
//
// The dataset is written through a crash-safe journal: a kill -9 or a
// SIGTERM-triggered graceful drain both leave a file that -resume picks
// up from its last checkpoint, and the finished dataset is byte-for-byte
// what an uninterrupted run would have produced.
//
//	topics-crawl -seed 1 -sites 50000 -out crawl.jsonl -attest attest.jsonl -allowlist allow.dat
//	topics-crawl -connect 127.0.0.1:8080 ...   # crawl a topics-serve instance over TCP
//	topics-crawl -resume -out crawl.jsonl ...  # continue an interrupted campaign
//
// With -shard i/N it runs as one worker of a distributed campaign
// (normally under topics-orch): it generates only its contiguous rank
// window of the world, crawls it into <out>.shard-i with independent
// checkpoints, and leaves dataset merge, attestation checks and
// analysis to the coordinator. Exit codes are the worker protocol: 0
// done, 130 drained (resumable), anything else a crash the coordinator
// restarts from the shard checkpoint.
//
//	topics-crawl -shard 2/8 -seed 1 -sites 500000 -out crawl.jsonl
package main

import (
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/chaos"
	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/orchestrator"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "world seed (must match the serving world)")
		sites      = flag.Int("sites", 50000, "number of ranked sites to crawl")
		workers    = flag.Int("workers", 16, "crawl parallelism")
		connect    = flag.String("connect", "", "crawl a topics-serve instance at this address instead of in-process")
		connectTLS = flag.String("connect-tls", "", "crawl a topics-serve -tls instance at this address (requires -ca-cert)")
		caCert     = flag.String("ca-cert", "topicscope-ca.pem", "CA certificate PEM written by topics-serve -tls")
		out        = flag.String("out", "crawl.jsonl", "visit dataset output (JSONL)")
		attest     = flag.String("attest", "attest.jsonl", "attestation records output (JSONL)")
		allowOut   = flag.String("allowlist", "allow.dat", "healthy allow-list output (.dat)")
		enforce    = flag.Bool("enforce", false, "run the healthy-gate ablation instead of the corrupted gate")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
		resume     = flag.Bool("resume", false, "resume an interrupted campaign from -out's last checkpoint")
		ckptEvery  = flag.Int("checkpoint-every", topicscope.DefaultCheckpointEvery, "sites between durable checkpoints (fsync + manifest)")
		budgetMS   = flag.Int("visit-budget-ms", 0, "per-visit deadline on the virtual clock; 0 disables the watchdog")
		timeoutMS  = flag.Int("timeout-ms", 10000, "per-request timeout for -connect mode")
		useChaos   = flag.Bool("chaos", false, "inject the paper-calibrated fault profile client-side")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "fault-injection seed (independent of the world seed)")
		retries    = flag.Int("retries", 2, "extra attempts per navigation/fetch; 0 disables retries")
		tracePath  = flag.String("trace", "", "write per-visit span trees here (JSONL, .gz transparently); tail with topics-monitor -tail")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and live crawl metrics at /__metrics on this address")
		shard      = flag.String("shard", "", "run as shard i/N of a distributed campaign (see topics-orch); writes <out>.shard-i")

		storageChaos = flag.Bool("storage-chaos", false, "inject seeded storage faults (EIO blips, short writes, torn renames) on every artifact write")
		storageSeed  = flag.Uint64("storage-chaos-seed", 1, "storage fault-injection seed")
		storageRate  = flag.Float64("storage-fault-rate", 0.02, "per-operation storage fault probability under -storage-chaos")
		enospcAfter  = flag.Int64("storage-enospc-after", 0, "simulated disk capacity in bytes; the crossing write latches a persistent ENOSPC (0 = unlimited)")
	)
	flag.Parse()

	if *shard != "" {
		if *connect != "" || *connectTLS != "" || *tracePath != "" {
			fatal(errors.New("-shard workers crawl their world window in-process: -connect, -connect-tls and -trace are unsupported"))
		}
		runShardWorker(shardWorkerFlags{
			shard: *shard, seed: *seed, sites: *sites, workers: *workers,
			out: *out, enforce: *enforce, quiet: *quiet, resume: *resume,
			ckptEvery: *ckptEvery, budgetMS: *budgetMS,
			chaos: *useChaos, chaosSeed: *chaosSeed, retries: *retries,
			pprofAddr:    *pprofAddr,
			storageChaos: *storageChaos, storageSeed: *storageSeed,
			storageRate: *storageRate, enospcAfter: *enospcAfter,
		})
		return
	}

	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: *seed, NumSites: *sites})
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)

	var client *http.Client
	scheme := "http"
	switch {
	case *connectTLS != "":
		pem, err := os.ReadFile(*caCert)
		if err != nil {
			fatal(err)
		}
		client, err = topicscope.NewTLSClientFromPEM(world, *connectTLS, pem, time.Duration(*timeoutMS)*time.Millisecond)
		if err != nil {
			fatal(err)
		}
		scheme = "https"
	case *connect != "":
		client = topicscope.NewTCPClient(world, *connect, time.Duration(*timeoutMS)*time.Millisecond)
	default:
		client = topicscope.NewServer(world, nil).Client()
	}
	var injector *topicscope.ChaosInjector
	if *useChaos {
		injector = topicscope.EnableChaos(client, topicscope.DefaultChaos(*chaosSeed))
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// Observability first: the journal reports its recovery and
	// checkpoint counters through the same registry as the crawl.
	reg := topicscope.NewMetricsRegistry()

	list := world.List()
	rankSite := make(map[int]string, len(list.Entries))
	for _, e := range list.Entries {
		rankSite[e.Rank] = e.Domain
	}

	// The dataset is a crash-safe journal: framed records, periodic
	// fsync'd checkpoints, and a manifest that makes -resume O(tail).
	// The journal's observer maintains the live analysis index beside it
	// (<out>.idx at every checkpoint) for topics-monitor -live and
	// topics-report -live.
	skip := map[string]bool{}
	storageFS, storageRetry := storagePolicy(*storageChaos, *storageSeed, *storageRate, *enospcAfter, reg)
	liveIn := &topicscope.AnalysisInput{Allowlist: allow, Metrics: reg, FS: storageFS}
	jopts := topicscope.JournalOptions{
		CheckpointEvery: *ckptEvery,
		Metrics:         reg,
		Skip:            func(rank int) bool { return skip[rankSite[rank]] },
		Durable:         durable.Options{FS: storageFS, Retry: storageRetry},
	}
	var journal *topicscope.DatasetJournal
	if *resume {
		sink, lst, err := topicscope.OpenLiveAnalysisSink(*out, liveIn)
		if err != nil {
			fatal(err)
		}
		if lst.SnapshotRestored {
			fmt.Printf("resume: index snapshot restored (%d records)\n", lst.SnapshotRecords)
		}
		jopts.Observer = sink
		var st *topicscope.ResumeState
		journal, st, err = topicscope.ResumeJournal(*out, jopts)
		if err != nil {
			fatal(err)
		}
		for site := range st.Completed {
			skip[site] = true
		}
		for _, e := range list.Entries {
			if e.Rank <= st.WatermarkRank {
				skip[e.Domain] = true
			}
		}
		fmt.Printf("resume: %d records kept, skipping %d already-crawled sites (%d tail bytes replayed)\n",
			st.RecordsKept, len(skip), st.BytesRead)
		if st.RecordsDropped > 0 {
			fmt.Printf("resume: dropped %d torn trailing records; their sites recrawl\n", st.RecordsDropped)
		}
	} else {
		jopts.Observer = topicscope.NewLiveAnalysisSink(*out, liveIn)
		var err error
		journal, err = topicscope.CreateJournal(*out, jopts)
		if err != nil {
			fatal(err)
		}
	}

	// Every crawl folds its traces into a summary; -trace additionally
	// streams them as JSONL, -pprof serves the registry live.
	summary := topicscope.NewTraceSummary()
	traces := topicscope.TraceTee{summary}
	var traceWriter *topicscope.TraceWriter
	var traceClose func() error
	if *tracePath != "" {
		traceRaw, err := os.Create(*tracePath) //topicslint:ignore atomicwrite streaming trace sink, tailed live by topics-monitor; cannot be written atomically
		if err != nil {
			fatal(err)
		}
		var traceSink io.Writer = traceRaw
		traceClose = traceRaw.Close
		if strings.HasSuffix(*tracePath, ".gz") {
			zw := gzip.NewWriter(traceRaw)
			traceSink = zw
			traceClose = func() error {
				if err := zw.Close(); err != nil {
					return err
				}
				return traceRaw.Close()
			}
		}
		traceWriter = topicscope.NewTraceWriter(traceSink)
		traces = append(traces, traceWriter)
	}
	if *pprofAddr != "" {
		dbg, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/ (metrics at %s)\n", dbg.Addr(), topicscope.MetricsPath)
		go func() {
			srv := &http.Server{Handler: topicscope.DebugMux(reg), ReadHeaderTimeout: 10 * time.Second}
			srv.Serve(dbg) //nolint:errcheck // best-effort debug endpoint
		}()
	}

	attempts := *retries + 1
	if attempts < 1 {
		attempts = 1
	}
	cr := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             client,
		ReferenceAllowlist: allow,
		Enforce:            *enforce,
		Workers:            *workers,
		Writer:             journal,
		Collect:            true,
		SkipSites:          skip,
		Scheme:             scheme,
		Attempts:           attempts,
		VisitBudget:        time.Duration(*budgetMS) * time.Millisecond,
		Logger:             logger,
		Metrics:            reg,
		Traces:             traces,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGTERM / Ctrl-C cancels the context; the crawler drains — stops
	// dispatching, finishes what it can, flushes a final checkpoint —
	// and Run returns the partial result with ctx.Err().
	res, err := cr.Run(ctx, list)
	drained := errors.Is(err, context.Canceled)
	if err != nil && !drained {
		failStorageAware(journal, err)
	}
	if err := journal.Close(); err != nil {
		failStorageAware(nil, err)
	}
	fmt.Printf("crawl: %s\n", res.Stats)
	if injector != nil {
		fmt.Printf("chaos: %s\n", injector.Stats().Snapshot())
	}
	fmt.Printf("dataset: %s (%d visit records)\n", *out, res.Data.Len())
	fmt.Printf("success rate: %.1f%% (paper: 86.8%%)\n", summary.SuccessRate()*100)
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			fatal(err)
		}
		if err := traceClose(); err != nil {
			fatal(err)
		}
		nTraces, _, _, _, _ := summary.Counts()
		fmt.Printf("traces: %s (%d records)\n", *tracePath, nTraces)
	}
	if drained {
		fmt.Println("crawl drained: dataset is durable through its final checkpoint; rerun with -resume to continue")
		os.Exit(130)
	}

	// Attestation checks for every allow-listed domain plus every
	// calling party the crawl observed.
	domains := allow.Domains()
	domains = append(domains, topicscope.CallerDomains(res.Data)...)
	recs := cr.CheckAttestations(ctx, domains)
	if err := topicscope.SaveAttestations(*attest, recs); err != nil {
		fatal(err)
	}
	fmt.Printf("attestations: %s (%d domains)\n", *attest, len(recs))

	if err := topicscope.SaveAllowlist(*allowOut, allow); err != nil {
		fatal(err)
	}
	fmt.Printf("allow-list: %s (%d domains)\n", *allowOut, allow.Len())
}

// shardWorkerFlags carries the flag subset a -shard worker honours.
type shardWorkerFlags struct {
	shard             string
	seed, chaosSeed   uint64
	sites, workers    int
	out               string
	enforce, quiet    bool
	resume, chaos     bool
	ckptEvery         int
	budgetMS, retries int
	pprofAddr         string
	storageChaos      bool
	storageSeed       uint64
	storageRate       float64
	enospcAfter       int64
}

// runShardWorker is the -shard i/N mode: one worker of a distributed
// campaign, crawling only its contiguous rank window into its own
// journal shard. The coordinator owns everything downstream (merge,
// attestations, analysis), so this path writes no -attest/-allowlist
// artifacts.
func runShardWorker(f shardWorkerFlags) {
	index, count, err := orchestrator.ParseShard(f.shard)
	if err != nil {
		fatal(err)
	}
	specs, err := orchestrator.Partition(f.sites, count)
	if err != nil {
		fatal(err)
	}
	if count != len(specs) {
		fatal(fmt.Errorf("%d shards over %d sites: at most one shard per site", count, f.sites))
	}
	spec := specs[index]

	reg := topicscope.NewMetricsRegistry()
	metricsURL := ""
	if f.pprofAddr != "" {
		dbg, err := net.Listen("tcp", f.pprofAddr)
		if err != nil {
			fatal(err)
		}
		metricsURL = fmt.Sprintf("http://%s%s", dbg.Addr(), topicscope.MetricsPath)
		fmt.Printf("pprof on http://%s/debug/pprof/ (metrics at %s)\n", dbg.Addr(), topicscope.MetricsPath)
		go func() {
			srv := &http.Server{Handler: topicscope.DebugMux(reg), ReadHeaderTimeout: 10 * time.Second}
			srv.Serve(dbg) //nolint:errcheck // best-effort debug endpoint
		}()
	}
	var logger *slog.Logger
	if !f.quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	retries := f.retries
	if retries <= 0 {
		retries = -1 // ShardCampaign uses the Campaign convention: negative disables
	}

	storageFS, storageRetry := storagePolicy(f.storageChaos, f.storageSeed, f.storageRate, f.enospcAfter, reg)
	sc := orchestrator.ShardCampaign{
		Seed: f.seed, Sites: f.sites, Workers: f.workers,
		Enforce: f.enforce, Chaos: f.chaos, ChaosSeed: f.chaosSeed,
		Retries:     retries,
		VisitBudget: time.Duration(f.budgetMS) * time.Millisecond,
		OutputPath:  f.out, CheckpointEvery: f.ckptEvery,
		Shard: spec, Resume: f.resume,
		Logger: logger, Metrics: reg, MetricsURL: metricsURL,
		FS: storageFS, Retry: storageRetry,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := sc.Run(ctx)
	switch {
	case err == nil:
		fmt.Printf("shard %s: %s\n", spec, res.Stats)
		fmt.Printf("shard journal: %s\n", res.Path)
	case errors.Is(err, context.Canceled):
		fmt.Printf("shard %s drained: journal durable through its final checkpoint; rerun with -resume (or let topics-orch -resume)\n", spec)
		os.Exit(130)
	default:
		failStorageAware(nil, err)
	}
}

// storagePolicy builds the artifact-write filesystem and retry policy:
// the fault-injecting FS under -storage-chaos (nil otherwise, meaning
// the real OS), and a bounded retry for authoritative writes whose
// backoff rides the virtual clock inside the crawler.
func storagePolicy(inject bool, seed uint64, rate float64, enospcAfter int64, reg *topicscope.MetricsRegistry) (durable.FS, durable.RetryPolicy) {
	retry := durable.RetryPolicy{Attempts: 4, Backoff: 100 * time.Millisecond, Metrics: reg}
	if !inject {
		return nil, retry
	}
	return chaos.NewFaultFS(nil, chaos.UniformFSProfile(seed, rate, enospcAfter, reg)), retry
}

// failStorageAware is fatal plus the storage exit-code protocol: a
// persistent out-of-disk failure aborts the journal (the last durable
// checkpoint survives) and exits with the distinct resumable code 131,
// mirroring 130 for a graceful drain.
func failStorageAware(journal *topicscope.DatasetJournal, err error) {
	if durable.IsDiskFull(err) {
		if journal != nil {
			journal.Abort()
		}
		fmt.Fprintln(os.Stderr, "topics-crawl: out of disk space:", err)
		fmt.Fprintln(os.Stderr, "topics-crawl: dataset is durable through its last checkpoint; free space and rerun with -resume")
		os.Exit(131)
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-crawl:", err)
	os.Exit(1)
}
