// Command topics-fsck verifies — and with -repair, self-heals — the
// on-disk artifacts of a crawl campaign: the journal's framed records,
// the checkpoint manifest, the sparse frame index, the live analysis
// snapshot, stray atomic-write temps and the report JSON, across every
// shard in one pass.
//
// Damage is quarantined to whole-site-group rank windows (checkpoint
// boundaries always coincide with completed site groups) and the repair
// plan is executed as deterministic rank-window recrawls: every visit
// record is a pure function of its rank and the campaign parameters, so
// a repaired campaign is byte-identical to one that never took a fault.
// The campaign flags (-seed, -sites, -chaos, ...) must therefore match
// the original crawl exactly.
//
//	topics-fsck -data crawl.jsonl -seed 1 -sites 50000          # verify, exit 0 clean / 1 dirty
//	topics-fsck -data crawl.jsonl -shards 8 ...                 # verify all 8 shard journals
//	topics-fsck -data crawl.jsonl -repair ...                   # verify, then heal in place
//	topics-fsck -data crawl.jsonl -json report.json ...         # machine-readable verify report
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/netmeasure/topicscope/internal/durable"
	"github.com/netmeasure/topicscope/internal/fsck"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/orchestrator"
)

func main() {
	var (
		data      = flag.String("data", "crawl.jsonl", "campaign dataset path (the journal, or the <out> the shards hang off)")
		seed      = flag.Uint64("seed", 1, "world seed the campaign crawled with")
		sites     = flag.Int("sites", 50000, "number of ranked sites the campaign covered")
		shards    = flag.Int("shards", 0, "shard count of a distributed campaign; 0 = single journal at -data")
		workers   = flag.Int("workers", 16, "recrawl parallelism for -repair")
		enforce   = flag.Bool("enforce", false, "campaign ran the healthy-gate ablation")
		useChaos  = flag.Bool("chaos", false, "campaign ran with the client-side fault profile")
		chaosSeed = flag.Uint64("chaos-seed", 1, "campaign's fault-injection seed")
		retries   = flag.Int("retries", 2, "campaign's extra attempts per navigation/fetch")
		budgetMS  = flag.Int("visit-budget-ms", 0, "campaign's per-visit virtual-clock budget")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint cadence for repaired journals (0 = durable default)")
		reportIn  = flag.String("report", "", "campaign report JSON artifact to verify (and regenerate under -repair)")
		jsonOut   = flag.String("json", "", "write the machine-readable verify report here ('-' = stdout)")
		repair    = flag.Bool("repair", false, "execute the repair plan: truncate, splice salvage, recrawl quarantined rank windows")
		quiet     = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()

	camp := &fsck.Campaign{
		Seed:            *seed,
		Sites:           *sites,
		Workers:         *workers,
		Enforce:         *enforce,
		Chaos:           *useChaos,
		ChaosSeed:       *chaosSeed,
		Retries:         *retries,
		VisitBudget:     time.Duration(*budgetMS) * time.Millisecond,
		CheckpointEvery: *ckptEvery,
		Metrics:         obs.NewRegistry(),
	}

	paths := fsck.CampaignPaths{Report: *reportIn}
	if *shards > 0 {
		specs, err := orchestrator.Partition(*sites, *shards)
		if err != nil {
			fatal(err)
		}
		for _, spec := range specs {
			paths.Journals = append(paths.Journals, orchestrator.ShardPath(*data, spec.Index))
			paths.Windows = append(paths.Windows, fsck.Window{From: spec.FromRank, To: spec.ToRank})
			paths.Shards = append(paths.Shards, spec.Info())
		}
	} else {
		paths.Journals = []string{*data}
		paths.Windows = []fsck.Window{{From: 1, To: *sites}}
	}

	var rep *fsck.Report
	var err error
	if *repair {
		var results []*fsck.RepairResult
		rep, results, err = camp.RepairCampaign(context.Background(), paths)
		if err != nil {
			fatal(err)
		}
		if !*quiet {
			for i, res := range results {
				if res.Recrawled == 0 && res.Spliced == 0 && len(res.Rewrote) == 0 {
					continue
				}
				fmt.Printf("repaired %s: %d ranks recrawled, %d groups spliced, rewrote %v\n",
					paths.Journals[i], res.Recrawled, res.Spliced, res.Rewrote)
			}
		}
	} else {
		rep, _, err = camp.Verify(paths)
		if err != nil {
			fatal(err)
		}
	}

	if *jsonOut != "" {
		if *jsonOut == "-" {
			if err := rep.Encode(os.Stdout); err != nil {
				fatal(err)
			}
		} else if err := durable.WriteFileAtomic(*jsonOut, rep.Encode); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		printSummary(rep)
	}
	if *repair {
		// The exit code reports the post-repair state, not the damage the
		// verify found: re-verify read-only.
		clean, _, err := camp.Verify(paths)
		if err != nil {
			fatal(err)
		}
		if !clean.Clean {
			fmt.Fprintln(os.Stderr, "topics-fsck: repair left findings behind")
			os.Exit(1)
		}
		return
	}
	if !rep.Clean {
		os.Exit(1)
	}
}

func printSummary(rep *fsck.Report) {
	for _, j := range rep.Journals {
		state := "clean"
		if !j.Clean {
			state = fmt.Sprintf("%d findings, %d repair windows", len(j.Findings), len(j.Repair))
		}
		fmt.Printf("%s: ranks [%d,%d], %d records, %d sites — %s\n",
			j.Journal, j.FromRank, j.ToRank, j.Records, j.Sites, state)
		for _, f := range j.Findings {
			fmt.Printf("  %s: %s %s\n", f.Artifact, f.Code, f.Detail)
		}
		for _, w := range j.Repair {
			fmt.Printf("  recrawl ranks [%d,%d]\n", w.From, w.To)
		}
	}
	for _, f := range rep.Findings {
		fmt.Printf("%s: %s %s\n", f.Artifact, f.Code, f.Detail)
	}
	if rep.Clean {
		fmt.Println("campaign clean")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-fsck:", err)
	os.Exit(1)
}
