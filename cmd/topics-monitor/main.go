// Command topics-monitor implements the continuous monitoring §6 calls
// for: it crawls the same synthetic web at a series of virtual dates and
// charts how Topics adoption evolves — enrolled domains, active calling
// parties, and the share of websites where a call is observed.
//
//	topics-monitor -seed 1 -sites 5000 -from 2023-07-01 -to 2024-03-30 -step 720h
//
// With -tail it instead renders a campaign dashboard from a trace JSONL
// file (written by topics-crawl -trace or topics-report -trace): sites
// done, success rate against the paper's 86.8%, and the stage-clock
// latency breakdown. -follow keeps re-rendering while a crawl appends.
//
//	topics-monitor -tail crawl-traces.jsonl -follow
//
// With -live it renders the paper's headline tables (Table 1, dataset
// overview, the virtual-week trajectory) straight from a campaign
// journal while the crawl runs: the checkpoint index snapshot is
// restored once, then each refresh folds only the newly committed
// records, seeked to via the sparse frame index — O(delta), not
// O(dataset), even on multi-GB files.
//
//	topics-monitor -live crawl.jsonl.gz -seed 1 -sites 50000 -follow
//
// With -checkpoint it renders the durable state of a crash-safe dataset
// journal — committed records, watermark rank, uncommitted tail bytes —
// from the manifest topics-crawl maintains beside the file.
//
//	topics-monitor -checkpoint crawl.jsonl.gz
//
// With -shards it renders a distributed campaign (topics-orch): one row
// per shard from the worker status files beside the shard journals,
// per-shard checkpoint progress, and the campaign-wide metrics
// aggregated by fetching every live worker's /__metrics registry in its
// lossless JSON form and merging them (Registry.Merge is commutative,
// so the aggregate is exactly what one shared registry would hold).
//
//	topics-monitor -shards crawl.jsonl -follow
package main

import (
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/orchestrator"
	"github.com/netmeasure/topicscope/internal/vclock"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		sites   = flag.Int("sites", 5000, "number of ranked sites per snapshot")
		workers = flag.Int("workers", 16, "crawl parallelism")
		from    = flag.String("from", "2023-07-01", "first snapshot date (YYYY-MM-DD)")
		to      = flag.String("to", "2024-03-30", "last snapshot date (YYYY-MM-DD)")
		step    = flag.Duration("step", 60*24*time.Hour, "interval between snapshots")
		tail    = flag.String("tail", "", "render a campaign dashboard from this trace JSONL file instead of crawling")
		follow  = flag.Bool("follow", false, "with -tail: re-read and re-render every -every until interrupted")
		every   = flag.Duration("every", 2*time.Second, "with -follow: refresh interval")
		ckpt    = flag.String("checkpoint", "", "render the checkpoint state of this crash-safe dataset journal and exit")
		shards  = flag.String("shards", "", "render a distributed campaign: shard status + aggregated worker /__metrics for this -out path")
		live    = flag.String("live", "", "render Table 1 / figure deltas from this campaign journal while the crawl runs; -seed/-sites must match the campaign")
	)
	flag.Parse()

	if *live != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := liveDashboard(ctx, *live, *seed, *sites, *follow, *every); err != nil {
			fatal(err)
		}
		return
	}

	if *ckpt != "" {
		if err := renderCheckpoint(*ckpt); err != nil {
			fatal(err)
		}
		return
	}

	if *shards != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := shardsDashboard(ctx, *shards, *follow, *every); err != nil {
			fatal(err)
		}
		return
	}

	if *tail != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := tailDashboard(ctx, *tail, *follow, *every); err != nil {
			fatal(err)
		}
		return
	}

	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end, err := time.Parse("2006-01-02", *to)
	if err != nil {
		fatal(err)
	}
	if !start.Before(end) || *step <= 0 {
		fatal(fmt.Errorf("need from < to and a positive step"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	adoption := &analysis.Adoption{}
	for date := start; !date.After(end); date = date.Add(*step) {
		results, err := topicscope.Campaign{
			Seed:    *seed,
			Sites:   *sites,
			Workers: *workers,
			Start:   date,
		}.Run(ctx)
		if err != nil {
			fatal(err)
		}
		in := &topicscope.AnalysisInput{
			Data:         results.Data,
			Allowlist:    topicscope.NewAllowlist(results.World.Catalog.AllowedDomains()...),
			Attestations: topicscope.AttestationIndex(results.Attestations),
		}
		point := analysis.SnapshotAdoption(in, date)
		adoption.Points = append(adoption.Points, point)
		fmt.Fprintf(os.Stderr, "snapshot %s: %d active callers\n",
			date.Format("2006-01-02"), point.ActiveCallers)
	}
	fmt.Print(adoption.Render())
}

// liveDashboard renders the paper's headline tables from a campaign
// journal while the crawl appends to it. The first refresh restores the
// checkpoint index snapshot (<path>.idx) and folds the committed tail;
// every later refresh folds only the records committed since, located
// by the sparse frame index (gzip-member offsets), so a refresh over a
// multi-GB dataset reads the delta, not the file. The attestation sweep
// reruns in-process over the live caller set each refresh — it reaches
// only domains the fold has already seen, exactly like the post-hoc
// sweep over the finished dataset.
func liveDashboard(ctx context.Context, path string, seed uint64, sites int, follow bool, every time.Duration) error {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: seed, NumSites: sites})
	server := topicscope.NewServer(world, nil)
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)
	reg := topicscope.NewMetricsRegistry()
	cr := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             server.Client(),
		ReferenceAllowlist: allow,
		Metrics:            reg,
	})

	var idx *topicscope.LiveAnalysisIndex
	var folded int64
	render := func() error {
		m := topicscope.LoadManifest(path)
		if idx == nil {
			liveIn := &topicscope.AnalysisInput{Allowlist: allow, Metrics: reg}
			assembled, st, err := topicscope.LoadLiveAnalysisIndex(path, liveIn)
			if err != nil {
				if !follow {
					return err
				}
				fmt.Printf("topics-monitor — %s: waiting for the journal to appear\n", path)
				return nil
			}
			idx = assembled
			folded = int64(idx.Visits())
			fmt.Fprintf(os.Stderr, "live: assembled %d records (snapshot %d + tail %d), %d journal bytes read\n",
				idx.Visits(), st.SnapshotRecords, st.TailRecords, st.BytesRead)
		} else if m != nil && m.Records > folded {
			// Delta fold: only the records committed since last refresh,
			// seeked to via the frame index.
			st, err := topicscope.ReadRecordRange(path, folded, m.Records, func(v *topicscope.Visit) error {
				idx.Fold(v)
				return nil
			})
			if err != nil {
				return err
			}
			folded += st.Records
			fmt.Fprintf(os.Stderr, "live: folded %d new records (%d journal bytes, indexed seek: %v)\n",
				st.Records, st.BytesRead, st.Indexed)
		}

		domains := allow.Domains()
		domains = append(domains, idx.Callers()...)
		recs := cr.CheckAttestations(ctx, domains)
		in := &topicscope.AnalysisInput{
			Allowlist:    allow,
			Attestations: topicscope.AttestationIndex(recs),
			Metrics:      reg,
		}
		topicscope.AdoptAnalysisIndex(in, idx.Snapshot(in))

		var b strings.Builder
		fmt.Fprintf(&b, "topics-monitor — %s (live analysis, %d records folded)\n", path, idx.Visits())
		if m != nil {
			if info, err := os.Stat(path); err == nil {
				fmt.Fprintf(&b, "checkpoint: %d records committed, %d uncommitted tail bytes\n",
					m.Records, info.Size()-m.Offset)
			}
		}
		b.WriteString("\n")
		b.WriteString(topicscope.ComputeOverview(in).Render())
		b.WriteString("\n")
		b.WriteString(analysis.ComputeTable1(in).Render())
		if tr := topicscope.ComputeTrajectory(in); len(tr.Rows) > 0 {
			b.WriteString("\n")
			b.WriteString(tr.Render())
		}
		fmt.Print(b.String())
		return nil
	}
	if !follow {
		return render()
	}
	vclock.Poll(ctx, every, func() bool {
		return render() == nil && ctx.Err() == nil
	})
	return nil
}

// tailDashboard folds the trace file into an obs.Summary and renders the
// campaign dashboard; with follow it re-reads on a wall-clock cadence
// (vclock.Poll — the monitor watches a live crawl, so real time is the
// right clock here).
func tailDashboard(ctx context.Context, path string, follow bool, every time.Duration) error {
	render := func() error {
		sum := obs.NewSummary()
		err := foldTraces(path, sum)
		if err != nil {
			if !follow {
				return err
			}
			// A file that doesn't exist yet is normal when following a
			// crawl that hasn't started (shard workers create their
			// journals at staggered times): say so and keep polling
			// instead of rendering a misleading empty dashboard.
			if errors.Is(err, fs.ErrNotExist) {
				fmt.Printf("topics-monitor — %s: waiting for the file to appear\n", path)
				return nil
			}
			// Any other error in follow mode (a decode error on the last
			// line usually means the crawler is mid-write): render what
			// folded and keep going.
		}
		fmt.Print(dashboard(path, sum))
		return nil
	}
	if !follow {
		return render()
	}
	vclock.Poll(ctx, every, func() bool {
		return render() == nil && ctx.Err() == nil
	})
	return nil
}

// foldTraces streams every record of the (possibly gzipped) trace JSONL
// file into the summary.
func foldTraces(path string, sum *obs.Summary) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return err
		}
		defer zr.Close()
		r = zr
	}
	return topicscope.ReadTraces(r, sum.WriteTrace)
}

// paperSuccessRate is the crawl success rate reported by the paper
// (§2.4): 43,396 of the top 50k sites loaded.
const paperSuccessRate = 0.868

func dashboard(path string, s *obs.Summary) string {
	var b strings.Builder
	traces, visits, ok, partial, failed := s.Counts()
	fmt.Fprintf(&b, "topics-monitor — %s\n", path)
	fmt.Fprintf(&b, "traces %d  sites done %d  visits %d (ok %d, partial %d, failed %d)\n",
		traces, s.SiteCount(), visits, ok, partial, failed)
	fmt.Fprintf(&b, "success rate %.1f%%  (paper: %.1f%%, Δ %+.1f pp)\n",
		s.SuccessRate()*100, paperSuccessRate*100, (s.SuccessRate()-paperSuccessRate)*100)
	rows := s.StageBreakdown()
	if len(rows) > 0 {
		fmt.Fprintln(&b, "stage breakdown (stage-clock time):")
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  STAGE\tCOUNT\tTOTAL\tMEAN\tP50\tP99\tP999\tMAX")
		for _, r := range rows {
			fmt.Fprintf(w, "  %s\t%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
				r.Name, r.Count, r.Total, r.Mean, quantileCell(r.P50), quantileCell(r.P99), quantileCell(r.P999), r.Max)
		}
		w.Flush() //nolint:errcheck // strings.Builder cannot fail
	}
	return b.String()
}

// quantileCell renders a stage quantile, or "-" when the summary holds
// no distribution (a StageSummary rebuilt from its serialized form
// carries totals only).
func quantileCell(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.String()
}

// renderCheckpoint prints the durable state of a crash-safe dataset
// journal: what the manifest commits to, and how much uncommitted tail
// a resume would replay.
func renderCheckpoint(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	m := topicscope.LoadManifest(path)
	fmt.Printf("journal: %s (%d bytes on disk)\n", path, info.Size())
	if m == nil {
		fmt.Println("checkpoint: no usable manifest — resume falls back to a full salvaging scan")
		return nil
	}
	fmt.Printf("checkpoint: %d records committed through %d bytes (payload crc %08x)\n",
		m.Records, m.Offset, m.PayloadCRC)
	if m.WatermarkRank > 0 {
		fmt.Printf("watermark: rank %d (%s) — every earlier rank is durably recorded\n",
			m.WatermarkRank, m.WatermarkSite)
	}
	fmt.Printf("sites recorded: %d\n", m.Sites)
	if tail := info.Size() - m.Offset; tail > 0 {
		fmt.Printf("uncommitted tail: %d bytes (replayed on resume; torn site groups recrawl)\n", tail)
	} else {
		fmt.Println("uncommitted tail: none — the file is durable end to end")
	}
	return nil
}

// shardsDashboard renders a distributed campaign from the worker
// status files and shard checkpoint manifests beside out's shard
// journals, plus the merged metrics of every worker serving a live
// /__metrics endpoint. With follow it re-renders on a wall-clock
// cadence, tolerating shards whose journals haven't appeared yet.
func shardsDashboard(ctx context.Context, out string, follow bool, every time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	render := func() error {
		view, err := renderShards(out, client)
		if err != nil {
			if !follow {
				return err
			}
			fmt.Printf("topics-monitor — %s: waiting for shard status files to appear\n", out)
			return nil
		}
		fmt.Print(view)
		return nil
	}
	if !follow {
		return render()
	}
	vclock.Poll(ctx, every, func() bool {
		return render() == nil && ctx.Err() == nil
	})
	return nil
}

func renderShards(out string, client *http.Client) (string, error) {
	first, err := orchestrator.ReadStatus(orchestrator.ShardPath(out, 0))
	if err != nil {
		return "", fmt.Errorf("no shard status beside %s: %w", out, err)
	}
	count := first.Shard.Count

	var b strings.Builder
	fmt.Fprintf(&b, "topics-monitor — %s (%d shards)\n", out, count)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  SHARD\tRANKS\tSTATE\tPID\tPROGRESS\tMETRICS")
	agg := obs.NewRegistry()
	live := 0
	for i := 0; i < count; i++ {
		path := orchestrator.ShardPath(out, i)
		st, err := orchestrator.ReadStatus(path)
		if err != nil {
			fmt.Fprintf(w, "  %d\t?\tno status yet\t-\t-\t-\n", i)
			continue
		}
		state := st.State
		if st.Error != "" {
			state += ": " + st.Error
		}
		progress := "-"
		if m := topicscope.LoadManifest(path); m != nil {
			done := m.WatermarkRank - st.Shard.FromRank + 1
			if done < 0 {
				done = 0
			}
			progress = fmt.Sprintf("%d/%d sites", done, st.Shard.Sites())
		}
		metrics := "-"
		if st.MetricsURL != "" {
			if reg, err := fetchRegistry(client, st.MetricsURL); err != nil {
				metrics = "offline"
			} else {
				agg.Merge(reg)
				live++
				metrics = "live"
			}
		}
		fmt.Fprintf(w, "  %d\t[%d,%d]\t%s\t%d\t%s\t%s\n",
			i, st.Shard.FromRank, st.Shard.ToRank, state, st.PID, progress, metrics)
	}
	w.Flush() //nolint:errcheck // strings.Builder cannot fail

	if live > 0 {
		fmt.Fprintf(&b, "aggregated worker metrics (%d live registries, commutative merge):\n", live)
		agg.WriteProm(&b) //nolint:errcheck // strings.Builder cannot fail
		writeLatencyTable(&b, agg.Snapshot())
	}
	return b.String(), nil
}

// writeLatencyTable renders the campaign-wide latency quantiles from
// the merged registry snapshot — the p50/p99/p999 a single shared
// registry would report, because histogram buckets merge exactly.
func writeLatencyTable(b *strings.Builder, snap obs.Snapshot) {
	if len(snap.Histograms) == 0 {
		return
	}
	fmt.Fprintln(b, "campaign latency quantiles (merged histograms):")
	w := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  HISTOGRAM\tCOUNT\tP50\tP99\tP999\tMAX")
	for _, h := range snap.Histograms {
		fmt.Fprintf(w, "  %s\t%d\t%s\t%s\t%s\t%s\n",
			h.Name, h.Count,
			time.Duration(h.P50NS), time.Duration(h.P99NS), time.Duration(h.P999NS), time.Duration(h.MaxNS))
	}
	w.Flush() //nolint:errcheck // strings.Builder cannot fail
}

// fetchRegistry pulls a worker's registry in the lossless JSON wire
// form — the Prometheus text rendering would drop histogram buckets and
// make the merge lossy.
func fetchRegistry(client *http.Client, url string) (*obs.Registry, error) {
	resp, err := client.Get(url + "?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics endpoint returned %s", resp.Status)
	}
	return obs.ReadRegistry(resp.Body)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-monitor:", err)
	os.Exit(1)
}
