// Command topics-monitor implements the continuous monitoring §6 calls
// for: it crawls the same synthetic web at a series of virtual dates and
// charts how Topics adoption evolves — enrolled domains, active calling
// parties, and the share of websites where a call is observed.
//
//	topics-monitor -seed 1 -sites 5000 -from 2023-07-01 -to 2024-03-30 -step 720h
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/analysis"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		sites   = flag.Int("sites", 5000, "number of ranked sites per snapshot")
		workers = flag.Int("workers", 16, "crawl parallelism")
		from    = flag.String("from", "2023-07-01", "first snapshot date (YYYY-MM-DD)")
		to      = flag.String("to", "2024-03-30", "last snapshot date (YYYY-MM-DD)")
		step    = flag.Duration("step", 60*24*time.Hour, "interval between snapshots")
	)
	flag.Parse()

	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end, err := time.Parse("2006-01-02", *to)
	if err != nil {
		fatal(err)
	}
	if !start.Before(end) || *step <= 0 {
		fatal(fmt.Errorf("need from < to and a positive step"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	adoption := &analysis.Adoption{}
	for date := start; !date.After(end); date = date.Add(*step) {
		results, err := topicscope.Campaign{
			Seed:    *seed,
			Sites:   *sites,
			Workers: *workers,
			Start:   date,
		}.Run(ctx)
		if err != nil {
			fatal(err)
		}
		in := &topicscope.AnalysisInput{
			Data:         results.Data,
			Allowlist:    topicscope.NewAllowlist(results.World.Catalog.AllowedDomains()...),
			Attestations: topicscope.AttestationIndex(results.Attestations),
		}
		point := analysis.SnapshotAdoption(in, date)
		adoption.Points = append(adoption.Points, point)
		fmt.Fprintf(os.Stderr, "snapshot %s: %d active callers\n",
			date.Format("2006-01-02"), point.ActiveCallers)
	}
	fmt.Print(adoption.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-monitor:", err)
	os.Exit(1)
}
