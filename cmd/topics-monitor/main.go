// Command topics-monitor implements the continuous monitoring §6 calls
// for: it crawls the same synthetic web at a series of virtual dates and
// charts how Topics adoption evolves — enrolled domains, active calling
// parties, and the share of websites where a call is observed.
//
//	topics-monitor -seed 1 -sites 5000 -from 2023-07-01 -to 2024-03-30 -step 720h
//
// With -tail it instead renders a campaign dashboard from a trace JSONL
// file (written by topics-crawl -trace or topics-report -trace): sites
// done, success rate against the paper's 86.8%, and the stage-clock
// latency breakdown. -follow keeps re-rendering while a crawl appends.
//
//	topics-monitor -tail crawl-traces.jsonl -follow
//
// With -checkpoint it renders the durable state of a crash-safe dataset
// journal — committed records, watermark rank, uncommitted tail bytes —
// from the manifest topics-crawl maintains beside the file.
//
//	topics-monitor -checkpoint crawl.jsonl.gz
package main

import (
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/analysis"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/vclock"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "world seed")
		sites   = flag.Int("sites", 5000, "number of ranked sites per snapshot")
		workers = flag.Int("workers", 16, "crawl parallelism")
		from    = flag.String("from", "2023-07-01", "first snapshot date (YYYY-MM-DD)")
		to      = flag.String("to", "2024-03-30", "last snapshot date (YYYY-MM-DD)")
		step    = flag.Duration("step", 60*24*time.Hour, "interval between snapshots")
		tail    = flag.String("tail", "", "render a campaign dashboard from this trace JSONL file instead of crawling")
		follow  = flag.Bool("follow", false, "with -tail: re-read and re-render every -every until interrupted")
		every   = flag.Duration("every", 2*time.Second, "with -follow: refresh interval")
		ckpt    = flag.String("checkpoint", "", "render the checkpoint state of this crash-safe dataset journal and exit")
	)
	flag.Parse()

	if *ckpt != "" {
		if err := renderCheckpoint(*ckpt); err != nil {
			fatal(err)
		}
		return
	}

	if *tail != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := tailDashboard(ctx, *tail, *follow, *every); err != nil {
			fatal(err)
		}
		return
	}

	start, err := time.Parse("2006-01-02", *from)
	if err != nil {
		fatal(err)
	}
	end, err := time.Parse("2006-01-02", *to)
	if err != nil {
		fatal(err)
	}
	if !start.Before(end) || *step <= 0 {
		fatal(fmt.Errorf("need from < to and a positive step"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	adoption := &analysis.Adoption{}
	for date := start; !date.After(end); date = date.Add(*step) {
		results, err := topicscope.Campaign{
			Seed:    *seed,
			Sites:   *sites,
			Workers: *workers,
			Start:   date,
		}.Run(ctx)
		if err != nil {
			fatal(err)
		}
		in := &topicscope.AnalysisInput{
			Data:         results.Data,
			Allowlist:    topicscope.NewAllowlist(results.World.Catalog.AllowedDomains()...),
			Attestations: topicscope.AttestationIndex(results.Attestations),
		}
		point := analysis.SnapshotAdoption(in, date)
		adoption.Points = append(adoption.Points, point)
		fmt.Fprintf(os.Stderr, "snapshot %s: %d active callers\n",
			date.Format("2006-01-02"), point.ActiveCallers)
	}
	fmt.Print(adoption.Render())
}

// tailDashboard folds the trace file into an obs.Summary and renders the
// campaign dashboard; with follow it re-reads on a wall-clock cadence
// (vclock.Poll — the monitor watches a live crawl, so real time is the
// right clock here).
func tailDashboard(ctx context.Context, path string, follow bool, every time.Duration) error {
	render := func() error {
		sum := obs.NewSummary()
		err := foldTraces(path, sum)
		if err != nil && !follow {
			return err
		}
		// In follow mode a decode error on the last line usually means
		// the crawler is mid-write: render what folded and keep going.
		fmt.Print(dashboard(path, sum))
		return nil
	}
	if !follow {
		return render()
	}
	vclock.Poll(ctx, every, func() bool {
		return render() == nil && ctx.Err() == nil
	})
	return nil
}

// foldTraces streams every record of the (possibly gzipped) trace JSONL
// file into the summary.
func foldTraces(path string, sum *obs.Summary) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return err
		}
		defer zr.Close()
		r = zr
	}
	return topicscope.ReadTraces(r, sum.WriteTrace)
}

// paperSuccessRate is the crawl success rate reported by the paper
// (§2.4): 43,396 of the top 50k sites loaded.
const paperSuccessRate = 0.868

func dashboard(path string, s *obs.Summary) string {
	var b strings.Builder
	traces, visits, ok, partial, failed := s.Counts()
	fmt.Fprintf(&b, "topics-monitor — %s\n", path)
	fmt.Fprintf(&b, "traces %d  sites done %d  visits %d (ok %d, partial %d, failed %d)\n",
		traces, s.SiteCount(), visits, ok, partial, failed)
	fmt.Fprintf(&b, "success rate %.1f%%  (paper: %.1f%%, Δ %+.1f pp)\n",
		s.SuccessRate()*100, paperSuccessRate*100, (s.SuccessRate()-paperSuccessRate)*100)
	rows := s.StageBreakdown()
	if len(rows) > 0 {
		fmt.Fprintln(&b, "stage breakdown (stage-clock time):")
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  STAGE\tCOUNT\tTOTAL\tMEAN\tMAX")
		for _, r := range rows {
			fmt.Fprintf(w, "  %s\t%d\t%s\t%s\t%s\n", r.Name, r.Count, r.Total, r.Mean, r.Max)
		}
		w.Flush() //nolint:errcheck // strings.Builder cannot fail
	}
	return b.String()
}

// renderCheckpoint prints the durable state of a crash-safe dataset
// journal: what the manifest commits to, and how much uncommitted tail
// a resume would replay.
func renderCheckpoint(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	m := topicscope.LoadManifest(path)
	fmt.Printf("journal: %s (%d bytes on disk)\n", path, info.Size())
	if m == nil {
		fmt.Println("checkpoint: no usable manifest — resume falls back to a full salvaging scan")
		return nil
	}
	fmt.Printf("checkpoint: %d records committed through %d bytes (payload crc %08x)\n",
		m.Records, m.Offset, m.PayloadCRC)
	if m.WatermarkRank > 0 {
		fmt.Printf("watermark: rank %d (%s) — every earlier rank is durably recorded\n",
			m.WatermarkRank, m.WatermarkSite)
	}
	fmt.Printf("sites recorded: %d\n", m.Sites)
	if tail := info.Size() - m.Offset; tail > 0 {
		fmt.Printf("uncommitted tail: %d bytes (replayed on resume; torn site groups recrawl)\n", tail)
	} else {
		fmt.Println("uncommitted tail: none — the file is durable end to end")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-monitor:", err)
	os.Exit(1)
}
