// Command topics-world generates the deterministic synthetic web and
// writes its Tranco-style rank list, the browser allow-list database and
// a summary of the world's composition.
//
// Usage:
//
//	topics-world -seed 1 -sites 50000 -list tranco.csv -allowlist privacy-sandbox-attestations.dat
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed (same seed ⇒ identical world)")
		sites     = flag.Int("sites", 50000, "number of ranked sites")
		listPath  = flag.String("list", "", "write the Tranco-style rank list CSV here")
		allowPath = flag.String("allowlist", "", "write the allow-list .dat database here")
		corrupt   = flag.Bool("corrupt", false, "corrupt the written allow-list (the paper's crawl configuration, §2.3)")
		specPath  = flag.String("spec", "", "write the full world spec JSON here")
	)
	flag.Parse()

	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: *seed, NumSites: *sites})
	fmt.Printf("world: %s\n", world.Stats())

	if *listPath != "" {
		if err := world.List().SaveFile(*listPath); err != nil {
			fatal(err)
		}
		fmt.Printf("rank list: %s (%d entries)\n", *listPath, world.List().Len())
	}
	if *specPath != "" {
		err := topicscope.WriteFileAtomic(*specPath, func(w io.Writer) error {
			return topicscope.SaveWorld(world, w)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("world spec: %s\n", *specPath)
	}
	if *allowPath != "" {
		if err := writeAllowlist(world, *allowPath, *corrupt); err != nil {
			fatal(err)
		}
		state := "healthy"
		if *corrupt {
			state = "CORRUPTED (browser will default-allow every caller)"
		}
		fmt.Printf("allow-list: %s (%s)\n", *allowPath, state)
	}
}

func writeAllowlist(world *topicscope.World, path string, corrupt bool) error {
	list := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)
	var buf bytes.Buffer
	if _, err := list.WriteTo(&buf); err != nil {
		return err
	}
	raw := buf.Bytes()
	if corrupt {
		// Flip one byte mid-file, as the paper did on purpose.
		raw[len(raw)/2] ^= 0xFF
	}
	return topicscope.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-world:", err)
	os.Exit(1)
}
