// Command topics-world generates the deterministic synthetic web and
// writes its Tranco-style rank list, the browser allow-list database and
// a summary of the world's composition.
//
// Usage:
//
//	topics-world -seed 1 -sites 50000 -list tranco.csv -allowlist privacy-sandbox-attestations.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed (same seed ⇒ identical world)")
		sites     = flag.Int("sites", 50000, "number of ranked sites")
		listPath  = flag.String("list", "", "write the Tranco-style rank list CSV here")
		allowPath = flag.String("allowlist", "", "write the allow-list .dat database here")
		corrupt   = flag.Bool("corrupt", false, "corrupt the written allow-list (the paper's crawl configuration, §2.3)")
		specPath  = flag.String("spec", "", "write the full world spec JSON here")
	)
	flag.Parse()

	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: *seed, NumSites: *sites})
	fmt.Printf("world: %s\n", world.Stats())

	if *listPath != "" {
		if err := world.List().SaveFile(*listPath); err != nil {
			fatal(err)
		}
		fmt.Printf("rank list: %s (%d entries)\n", *listPath, world.List().Len())
	}
	if *specPath != "" {
		f, err := os.Create(*specPath)
		if err != nil {
			fatal(err)
		}
		if err := topicscope.SaveWorld(world, f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("world spec: %s\n", *specPath)
	}
	if *allowPath != "" {
		if err := writeAllowlist(world, *allowPath, *corrupt); err != nil {
			fatal(err)
		}
		state := "healthy"
		if *corrupt {
			state = "CORRUPTED (browser will default-allow every caller)"
		}
		fmt.Printf("allow-list: %s (%s)\n", *allowPath, state)
	}
}

func writeAllowlist(world *topicscope.World, path string, corrupt bool) error {
	list := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := list.WriteTo(f); err != nil {
		return err
	}
	if corrupt {
		// Flip one byte mid-file, as the paper did on purpose.
		info, err := f.Stat()
		if err != nil {
			return err
		}
		buf := []byte{0xFF}
		if _, err := f.WriteAt(buf, info.Size()/2); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-world:", err)
	os.Exit(1)
}
