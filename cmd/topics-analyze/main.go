// Command topics-analyze regenerates the paper's tables and figures from
// a crawl produced by topics-crawl.
//
//	topics-analyze -data crawl.jsonl -attest attest.jsonl -allowlist allow.dat -exp all
//
// Experiments: D1 (dataset overview), D1r (visit reliability), T1
// (Table 1), F2/F3/F5/F6/F7 (figures), A1 (§4 anomalous usage), E1
// (enrolment timeline), or "all".
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		dataPath  = flag.String("data", "crawl.jsonl", "visit dataset (JSONL)")
		attPath   = flag.String("attest", "attest.jsonl", "attestation records (JSONL)")
		allowPath = flag.String("allowlist", "allow.dat", "allow-list database (.dat)")
		exp       = flag.String("exp", "all", "experiment id: D1,D1r,D2,T1,F2,F3,A1,F5,F6,F7,E1,X1 or all")
		csvOut    = flag.String("csv", "", "also export the flattened per-call CSV here")
		dataPath2 = flag.String("data2", "", "second crawl of the same world: print the L1 longitudinal comparison")
	)
	flag.Parse()

	data, err := topicscope.LoadDataset(*dataPath)
	if err != nil {
		fatal(err)
	}
	recs, err := topicscope.LoadAttestations(*attPath)
	if err != nil {
		fatal(err)
	}
	allow, err := topicscope.LoadAllowlist(*allowPath)
	if err != nil {
		// A corrupted database is exactly what the §2.3 bug is about;
		// the *analysis* however needs the healthy list.
		fatal(fmt.Errorf("allow-list unusable (%w) — regenerate with topics-crawl", err))
	}

	in := &topicscope.AnalysisInput{
		Data:         data,
		Allowlist:    allow,
		Attestations: topicscope.AttestationIndex(recs),
	}
	// One parallel pass aggregates the dataset; every experiment below —
	// the full report, the longitudinal comparison, any figure — answers
	// from this index without rescanning the visits.
	topicscope.BuildAnalysisIndex(in)
	report := topicscope.Analyze(in)

	if *csvOut != "" {
		if err := topicscope.WriteFileAtomic(*csvOut, data.WriteCallsCSV); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "calls CSV written to %s\n", *csvOut)
	}

	if *dataPath2 != "" {
		data2, err := topicscope.LoadDataset(*dataPath2)
		if err != nil {
			fatal(err)
		}
		in2 := &topicscope.AnalysisInput{
			Data:         data2,
			Allowlist:    allow,
			Attestations: topicscope.AttestationIndex(recs),
		}
		l := topicscope.CompareEnabledRates(
			topicscope.ComputeFigure3(in, 50, 0),
			topicscope.ComputeFigure3(in2, 50, 0))
		fmt.Print(l.Render())
		return
	}

	switch strings.ToUpper(*exp) {
	case "ALL":
		fmt.Print(report.Render())
	case "D1":
		fmt.Print(report.Overview.Render())
	case "D1R":
		fmt.Print(report.Reliability.Render())
	case "T1":
		fmt.Print(report.Table1.Render())
	case "F2":
		fmt.Print(report.Figure2.Render())
	case "F3":
		fmt.Print(report.Figure3.Render())
	case "A1":
		fmt.Print(report.Anomaly.Render())
	case "F5":
		fmt.Print(report.Figure5.Render())
	case "F6":
		fmt.Print(report.Figure6.Render())
	case "F7":
		fmt.Print(report.Figure7.Render())
	case "E1":
		fmt.Print(report.Enrolment.Render())
	case "X1":
		fmt.Print(report.CallTypes.Render())
	case "D2":
		fmt.Print(report.Languages.Render())
	default:
		fatal(errors.New("unknown experiment " + *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-analyze:", err)
	os.Exit(1)
}
