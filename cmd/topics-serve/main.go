// Command topics-serve exposes the synthetic web on a TCP listener:
// every hostname of the world is virtual-hosted behind one address, so a
// crawler (topics-crawl -connect) or a plain curl with a Host header can
// browse it.
//
//	topics-serve -seed 1 -sites 50000 -addr :8080
//	curl -H 'Host: criteo.com' http://localhost:8080/.well-known/privacy-sandbox-attestations.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed")
		sites     = flag.Int("sites", 50000, "number of ranked sites")
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		useTLS    = flag.Bool("tls", false, "serve HTTPS with per-host certificates from an in-memory CA")
		caOut     = flag.String("ca-cert", "topicscope-ca.pem", "with -tls: write the CA certificate PEM here for crawlers to trust")
		useChaos  = flag.Bool("chaos", false, "inject the paper-calibrated fault profile (5xx, resets, truncation, hard-down hosts)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault-injection seed (independent of the world seed)")
		pprofAddr = flag.String("pprof", "", "also serve net/http/pprof and /__metrics on this address (e.g. 127.0.0.1:6060)")
		selftest  = flag.Bool("selftest", false, "run the deterministic in-process load harness against this world, print the report, and exit (non-zero on SLO violation)")
		sloP99    = flag.Float64("slo-p99-ms", 0, "with -selftest: fail when overall p99 exceeds this many virtual ms (0 = unchecked)")
		sloReqS   = flag.Float64("slo-req-s", 0, "with -selftest: fail when virtual req/s falls below this (0 = unchecked)")
	)
	flag.Parse()

	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: *seed, NumSites: *sites})

	if *selftest {
		rep, err := topicscope.RunLoad(topicscope.LoadConfig{World: world, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		slo := topicscope.LoadSLO{
			MaxP99:       time.Duration(*sloP99 * float64(time.Millisecond)),
			MinReqPerSec: *sloReqS,
		}
		if violations := rep.Check(slo); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "SLO violation:", v)
			}
			os.Exit(1)
		}
		return
	}

	server := topicscope.NewServer(world, nil)

	var chaosStats *topicscope.ChaosStats
	var handler http.Handler = server
	if *useChaos {
		ch := topicscope.NewChaosHandler(topicscope.DefaultChaos(*chaosSeed), server)
		chaosStats = ch.Stats()
		handler = ch
		fmt.Printf("chaos enabled (seed %d)\n", *chaosSeed)
	}
	if *pprofAddr != "" {
		dbg, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/\n", dbg.Addr())
		go func() {
			srv := &http.Server{Handler: topicscope.DebugMux(nil), ReadHeaderTimeout: 10 * time.Second}
			srv.Serve(dbg) //nolint:errcheck // best-effort debug endpoint
		}()
	}

	// The metrics endpoint sits in front of the injector so scrapes are
	// never fault-injected.
	metrics := topicscope.MetricsHandler(server, chaosStats, nil)
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == topicscope.MetricsPath {
			metrics.ServeHTTP(w, r)
			return
		}
		handler.ServeHTTP(w, r)
	})

	var ln net.Listener
	var err error
	if *useTLS {
		var ca *topicscope.CertAuthority
		ln, ca, err = server.ListenTLS(*addr)
		if err != nil {
			fatal(err)
		}
		err = topicscope.WriteFileAtomic(*caOut, func(w io.Writer) error {
			_, werr := w.Write(ca.CertPEM())
			return werr
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s on https://%s (CA cert: %s)\n", world.Stats(), ln.Addr(), *caOut)
	} else {
		ln, err = net.Listen("tcp", *addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving %s on %s\n", world.Stats(), ln.Addr())
		fmt.Printf("example: curl -H 'Host: %s' http://%s/\n", world.Sites[0].Domain, ln.Addr())
	}

	hs := &http.Server{
		Handler:           root,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Println(server.Metrics())
	if chaosStats != nil {
		fmt.Println(chaosStats.Snapshot())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-serve:", err)
	os.Exit(1)
}
