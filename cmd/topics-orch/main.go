// Command topics-orch runs a distributed measurement campaign: it
// partitions the site ranks into N contiguous shards, supervises one
// worker per shard (restarting crashed workers from their shard
// checkpoints), merges the shard journals into a dataset byte-identical
// to a single-process crawl, and computes the full report from the
// commutative merge of per-shard analysis indexes.
//
// By default the workers run as goroutines in this process. With
// -worker-bin pointing at a topics-crawl binary, each shard becomes a
// separate `topics-crawl -shard i/N` process whose exit code drives
// supervision (0 done, 130 drained, else crash → restart); add
// -worker-metrics to give every worker process a live /__metrics
// endpoint that topics-monitor -shards aggregates.
//
//	topics-orch -seed 1 -sites 50000 -shards 8 -out crawl.jsonl
//	topics-orch -worker-bin ./topics-crawl -shards 8 -out crawl.jsonl -worker-metrics
//	topics-orch -resume -shards 8 -out crawl.jsonl   # continue after a drain
//
// SIGTERM / Ctrl-C drains every worker to a durable checkpoint and
// exits 130; rerunning with -resume (same seed, sites and shard count)
// completes the campaign with byte-identical output.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"github.com/netmeasure/topicscope"
	"github.com/netmeasure/topicscope/internal/obs"
	"github.com/netmeasure/topicscope/internal/orchestrator"
)

func main() {
	var (
		seed          = flag.Uint64("seed", 1, "world seed")
		sites         = flag.Int("sites", 50000, "number of ranked sites to crawl")
		shards        = flag.Int("shards", 4, "contiguous rank shards / workers")
		workers       = flag.Int("workers", 16, "crawl parallelism inside each worker")
		out           = flag.String("out", "crawl.jsonl", "merged dataset output (JSONL, .gz transparently); shards journal to <out>.shard-i")
		attest        = flag.String("attest", "attest.jsonl", "attestation records output (JSONL)")
		allowOut      = flag.String("allowlist", "allow.dat", "healthy allow-list output (.dat)")
		reportOut     = flag.String("report", "", "write the report as JSON here instead of rendering it to stdout")
		enforce       = flag.Bool("enforce", false, "run the healthy-gate ablation instead of the corrupted gate")
		quiet         = flag.Bool("quiet", false, "suppress progress logging")
		resume        = flag.Bool("resume", false, "resume an interrupted distributed campaign from the shard checkpoints")
		ckptEvery     = flag.Int("checkpoint-every", topicscope.DefaultCheckpointEvery, "sites between durable checkpoints per shard")
		useChaos      = flag.Bool("chaos", false, "inject the paper-calibrated fault profile client-side")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "fault-injection seed (independent of the world seed)")
		retries       = flag.Int("retries", 2, "extra attempts per navigation/fetch; 0 disables retries")
		maxRestarts   = flag.Int("max-restarts", orchestrator.DefaultMaxRestarts, "restart budget per shard after a worker crash; 0 disables restarts")
		workerBin     = flag.String("worker-bin", "", "spawn each shard as this topics-crawl binary instead of in-process goroutines")
		workerMetrics = flag.Bool("worker-metrics", false, "with -worker-bin: give each worker a live /__metrics endpoint (topics-monitor -shards aggregates them)")
		doFsck        = flag.Bool("fsck", false, "verify every shard journal after the crawl; corrupt shards are truncated to their last clean checkpoint and recrawled")
	)
	flag.Parse()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	campRetries := *retries
	if campRetries <= 0 {
		campRetries = -1 // Campaign convention: negative disables retries
	}
	campRestarts := *maxRestarts
	if campRestarts <= 0 {
		campRestarts = -1 // Campaign convention: negative disables restarts
	}
	var launcher orchestrator.Launcher
	if *workerBin != "" {
		l := &orchestrator.ExecLauncher{Bin: *workerBin, Stderr: os.Stderr}
		if *workerMetrics {
			l.ExtraArgs = []string{"-pprof", "127.0.0.1:0"}
		}
		launcher = l
	}

	c := orchestrator.Campaign{
		Seed: *seed, Sites: *sites, Workers: *workers,
		Enforce: *enforce, Chaos: *useChaos, ChaosSeed: *chaosSeed,
		Retries:    campRetries,
		OutputPath: *out, CheckpointEvery: *ckptEvery,
		Shards: *shards, Resume: *resume, MaxRestarts: campRestarts,
		Launcher: launcher, Logger: logger, Metrics: obs.NewRegistry(),
		Fsck: *doFsck,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := c.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Println("campaign drained: every shard is durable through its final checkpoint; rerun with -resume to continue")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("campaign: %d shards, %d restarts\n", len(res.Shards), res.Restarts)
	fmt.Printf("dataset: %s (%d visit records, %d sites, payload crc %08x)\n",
		*out, res.Merge.Records, res.Merge.Sites, res.Merge.PayloadCRC)

	if err := topicscope.SaveAttestations(*attest, res.Attestations); err != nil {
		fatal(err)
	}
	fmt.Printf("attestations: %s (%d domains)\n", *attest, len(res.Attestations))
	if err := topicscope.SaveAllowlist(*allowOut, res.Analysis.Allowlist); err != nil {
		fatal(err)
	}
	fmt.Printf("allow-list: %s (%d domains)\n", *allowOut, res.Analysis.Allowlist.Len())

	if *reportOut != "" {
		data, err := json.MarshalIndent(res.Report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reportOut, append(data, '\n'), 0o644); err != nil { //topicslint:ignore atomicwrite report artifact, regenerated wholesale from the journal on every run
			fatal(err)
		}
		fmt.Printf("report: %s\n", *reportOut)
		return
	}
	fmt.Print(res.Report.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-orch:", err)
	os.Exit(1)
}
