// Command topicslint is the repo's custom static-analysis multichecker.
// It loads every module package from source (no module proxy needed)
// and runs the internal/lint analyzer suite over it:
//
//	determinism — no wall clock / global RNG / unsorted map output in
//	              the determinism-critical packages
//	vclock      — no wall-clock timers outside internal/vclock
//	etld        — no ad-hoc hostname surgery outside internal/etld
//	errwrap     — %w wrapping in the crawler/chaos error paths
//
// Usage:
//
//	topicslint [-C dir] [-run names] [-v] [packages...]
//
// With no package arguments (or "./...") the whole module is analyzed.
// Explicit arguments are module-relative package directories, e.g.
// "internal/analysis". Exit status: 0 clean, 1 diagnostics, 2 usage or
// load failure.
//
// Findings are suppressed per line with a justified comment:
//
//	//topicslint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/netmeasure/topicscope/internal/lint"
)

func main() {
	var (
		chdir   = flag.String("C", ".", "module root (or any directory inside it)")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verbose = flag.Bool("v", false, "also print suppressed findings and type-check warnings")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*chdir)
	if err != nil {
		fatalf("%v", err)
	}

	var pkgs []*lint.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, arg := range args {
			rel := strings.TrimSuffix(strings.TrimPrefix(arg, "./"), "/")
			p, err := loader.Load(rel)
			if err != nil {
				fatalf("%v", err)
			}
			pkgs = append(pkgs, p)
		}
	}

	bad := 0
	suppressedTotal := 0
	for _, pkg := range pkgs {
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "topicslint: %s: type-check: %v\n", pkg.ImportPath, terr)
			}
		}
		kept, suppressed := lint.RunAnalyzers(pkg, analyzers)
		suppressedTotal += len(suppressed)
		for _, d := range kept {
			fmt.Println(d)
			bad++
		}
		if *verbose {
			for _, d := range suppressed {
				fmt.Printf("%s [suppressed]\n", d)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "topicslint: %d finding(s) across %d package(s) (%d suppressed)\n",
			bad, len(pkgs), suppressedTotal)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "topicslint: clean: %d package(s), %d suppression(s)\n",
			len(pkgs), suppressedTotal)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "topicslint: "+format+"\n", args...)
	os.Exit(2)
}
