// Command topicslint is the repo's custom static-analysis multichecker.
// It loads every module package from source (no module proxy needed)
// and runs the internal/lint analyzer suite over it:
//
//	determinism  — no wall clock / global RNG / unsorted map output in
//	               the determinism-critical packages
//	vclock       — no wall-clock timers outside internal/vclock
//	etld         — no ad-hoc hostname surgery outside internal/etld
//	errwrap      — %w wrapping in the crawler/chaos error paths
//	atomicwrite  — artifacts reach disk through internal/durable only
//	hotpath      — //topicslint:hotpath zeroalloc functions stay
//	               allocation-free, intra-package callees included
//	locks        — mutex discipline: Unlock on every path, no blocking
//	               under a lock, no writes in RWMutex read sections
//	goroleak     — every goroutine has a same-function join
//	structlayout — //topicslint:compact structs stay within their
//	               padding budget
//
// Usage:
//
//	topicslint [-C dir] [-run names] [-j n] [-json] [-escape] [-v] [packages...]
//
// With no package arguments (or "./...") the whole module is analyzed.
// Explicit arguments are module-relative package directories, e.g.
// "internal/analysis". Packages load and type-check across a worker
// pool (-j, default GOMAXPROCS); findings are reported in deterministic
// package/position order regardless of worker count.
//
// -json emits findings as a JSON array ({file, line, col, analyzer,
// message, suppressed}) for tooling; the CI problem matcher consumes
// the default text format.
//
// -escape additionally shells out to `go build -gcflags=-m=2` and
// cross-checks the compiler's escape analysis against the
// //topicslint:hotpath zeroalloc annotations: any value escaping to
// the heap inside an annotated function fails the run, closing the
// gap the purely syntactic hotpath rules cannot see.
//
// Exit status: 0 clean, 1 diagnostics, 2 usage or load failure.
//
// Findings are suppressed per line with a justified comment:
//
//	//topicslint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/netmeasure/topicscope/internal/lint"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

func main() {
	var (
		chdir   = flag.String("C", ".", "module root (or any directory inside it)")
		run     = flag.String("run", "", "comma-separated analyzer names to run (default all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verbose = flag.Bool("v", false, "also print suppressed findings and type-check warnings")
		jobs    = flag.Int("j", 0, "package-loading workers (default GOMAXPROCS)")
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		escape  = flag.Bool("escape", false, "cross-check hotpath annotations against go build -gcflags=-m=2")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := lint.NewLoader(*chdir)
	if err != nil {
		fatalf("%v", err)
	}
	loader.Jobs = *jobs

	var pkgs []*lint.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, arg := range args {
			rel := strings.TrimSuffix(strings.TrimPrefix(arg, "./"), "/")
			p, err := loader.Load(rel)
			if err != nil {
				fatalf("%v", err)
			}
			pkgs = append(pkgs, p)
		}
	}

	bad := 0
	suppressedTotal := 0
	findings := []jsonFinding{} // non-nil so -json always emits an array
	emit := func(d lint.Diagnostic, suppressed bool) {
		if suppressed {
			suppressedTotal++
		} else {
			bad++
		}
		if *jsonOut {
			findings = append(findings, jsonFinding{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: suppressed,
			})
			return
		}
		if suppressed {
			if *verbose {
				fmt.Printf("%s [suppressed]\n", d)
			}
			return
		}
		fmt.Println(d)
	}

	for _, pkg := range pkgs {
		if *verbose {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "topicslint: %s: type-check: %v\n", pkg.ImportPath, terr)
			}
		}
		kept, suppressed := lint.RunAnalyzers(pkg, analyzers)
		for _, d := range kept {
			emit(d, false)
		}
		for _, d := range suppressed {
			emit(d, true)
		}
	}

	if *escape {
		escDiags, err := lint.CheckEscapes(loader.ModuleDir, pkgs)
		if err != nil {
			fatalf("escape cross-check: %v", err)
		}
		for _, d := range escDiags {
			emit(d, false)
		}
	}

	if *jsonOut {
		if !*verbose {
			// Without -v, only unsuppressed findings ship.
			kept := findings[:0]
			for _, f := range findings {
				if !f.Suppressed {
					kept = append(kept, f)
				}
			}
			findings = kept
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatalf("%v", err)
		}
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "topicslint: %d finding(s) across %d package(s) (%d suppressed)\n",
			bad, len(pkgs), suppressedTotal)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "topicslint: clean: %d package(s), %d suppression(s)\n",
			len(pkgs), suppressedTotal)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "topicslint: "+format+"\n", args...)
	os.Exit(2)
}
