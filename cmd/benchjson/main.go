// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so benchmark baselines can be
// committed and diffed (see `make bench-json` and BENCH_report.json).
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_report.json
//
// Each benchmark becomes one entry keyed by its name with the
// GOMAXPROCS suffix stripped (BenchmarkTable1-8 → BenchmarkTable1), so
// reports from machines with different core counts stay comparable.
// Standard measurements (ns/op, B/op, allocs/op, MB/s) get dedicated
// fields; every custom b.ReportMetric unit lands under "metrics".
//
// With -check it becomes the regression gate (`make bench-gate`):
// instead of printing a report it compares the parsed run against a
// committed baseline and exits non-zero when a machine-independent
// metric regressed by more than -tol. That covers allocs/op and B/op,
// plus the serving-path SLO metrics reported by the deterministic load
// harness (p50_ms/p99_ms/p999_ms must not rise, req_s must not fall) —
// those are virtual-time quantities, identical on every host.
// Wall-clock ns/op varies with the host, so it is reported but never
// gates. Benchmarks missing from the baseline are advisory ("new").
//
//	go test -run '^$' -bench . -benchmem . | benchjson -check BENCH_report.json -tol 0.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result.
type entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	MBPerSec    float64            `json:"mb_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	check := flag.String("check", "", "baseline JSON to gate against instead of printing a report")
	tol := flag.Float64("tol", 0.2, "with -check: allowed fractional regression on allocs/op and B/op")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *check != "" {
		if err := gate(report, *check, *tol, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	out, err := marshalSorted(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
}

// sloMetric classifies a custom b.ReportMetric unit that gates hard
// like allocs/op. These come from the deterministic load harness —
// virtual-time quantities, identical on every host — so a drift is a
// real serving-path regression, never machine noise.
//
// lowerBetter metrics (latency quantiles) fail when they rise past
// tolerance; higher-better ones (throughput) fail when they fall.
func sloMetric(unit string) (gates, lowerBetter bool) {
	switch unit {
	case "p50_ms", "p99_ms", "p999_ms":
		return true, true
	case "req_s":
		return true, false
	}
	return false, false
}

// gate compares the current run to the committed baseline. allocs/op,
// B/op, and the virtual SLO metrics (p50_ms/p99_ms/p999_ms/req_s from
// the load harness) are stable across machines, so they gate hard;
// ns/op drift is printed for context only. Benchmarks present only on
// one side are reported as advisory — a benchmark missing from the
// committed baseline is "new" and never fails the gate, so fresh
// benchmarks land cleanly and the baseline is regenerated afterwards
// (`make bench-json`).
func gate(report map[string]*entry, baselinePath string, tol float64, w io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	baseline := map[string]*entry{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}

	names := make([]string, 0, len(report))
	for name := range report {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		got := report[name]
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "new benchmark (not in baseline, advisory): %s\n", name)
			continue
		}
		for _, m := range []struct {
			metric    string
			got, base float64
		}{
			{"allocs/op", got.AllocsPerOp, base.AllocsPerOp},
			{"B/op", got.BytesPerOp, base.BytesPerOp},
		} {
			if m.base <= 0 || m.got <= m.base*(1+tol) {
				continue
			}
			failures++
			fmt.Fprintf(w, "REGRESSION %s %s: %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)\n",
				name, m.metric, m.base, m.got, (m.got/m.base-1)*100, tol*100)
		}
		// SLO metrics: units are sorted so the output order is stable.
		units := make([]string, 0, len(base.Metrics))
		for unit := range base.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			gates, lowerBetter := sloMetric(unit)
			baseVal := base.Metrics[unit]
			if !gates || baseVal <= 0 {
				continue
			}
			gotVal, ok := got.Metrics[unit]
			if !ok {
				failures++
				fmt.Fprintf(w, "REGRESSION %s %s: baseline %.3f but metric missing from run\n", name, unit, baseVal)
				continue
			}
			switch {
			case lowerBetter && gotVal > baseVal*(1+tol):
				failures++
				fmt.Fprintf(w, "REGRESSION %s %s: %.3f -> %.3f (+%.1f%%, SLO tolerance %.0f%%)\n",
					name, unit, baseVal, gotVal, (gotVal/baseVal-1)*100, tol*100)
			case !lowerBetter && gotVal < baseVal*(1-tol):
				failures++
				fmt.Fprintf(w, "REGRESSION %s %s: %.1f -> %.1f (%.1f%%, SLO tolerance %.0f%%)\n",
					name, unit, baseVal, gotVal, (gotVal/baseVal-1)*100, tol*100)
			}
		}
		if base.NsPerOp > 0 {
			fmt.Fprintf(w, "%s ns/op: %.0f -> %.0f (%+.1f%%, advisory)\n",
				name, base.NsPerOp, got.NsPerOp, (got.NsPerOp/base.NsPerOp-1)*100)
		}
	}
	for name := range baseline {
		if _, ok := report[name]; !ok {
			fmt.Fprintf(w, "baseline benchmark missing from run: %s\n", name)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%% (regenerate the baseline with `make bench-json` if intentional)", failures, tol*100)
	}
	fmt.Fprintln(w, "bench gate: ok")
	return nil
}

// parse consumes benchmark output lines; non-benchmark lines (package
// headers, PASS, ok) are ignored.
func parse(sc *bufio.Scanner) (map[string]*entry, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	report := map[string]*entry{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." banner without results
		}
		e := &entry{Iterations: iters}
		// Remaining fields alternate value/unit.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			case "MB/s":
				e.MBPerSec = val
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = val
			}
		}
		report[stripProcs(fields[0])] = e
	}
	return report, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths intact:
// BenchmarkCrawlChaos/retries=off-8 → BenchmarkCrawlChaos/retries=off.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// marshalSorted renders the report with stable key order (encoding/json
// sorts map keys, but an explicit ordered body keeps diffs minimal and
// readable).
func marshalSorted(report map[string]*entry) ([]byte, error) {
	names := make([]string, 0, len(report))
	for name := range report {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		body, err := json.Marshal(report[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", name, body)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
