// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON report on stdout, so benchmark baselines can be
// committed and diffed (see `make bench-json` and BENCH_report.json).
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH_report.json
//
// Each benchmark becomes one entry keyed by its name with the
// GOMAXPROCS suffix stripped (BenchmarkTable1-8 → BenchmarkTable1), so
// reports from machines with different core counts stay comparable.
// Standard measurements (ns/op, B/op, allocs/op, MB/s) get dedicated
// fields; every custom b.ReportMetric unit lands under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's parsed result.
type entry struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	MBPerSec    float64            `json:"mb_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := marshalSorted(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
}

// parse consumes benchmark output lines; non-benchmark lines (package
// headers, PASS, ok) are ignored.
func parse(sc *bufio.Scanner) (map[string]*entry, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	report := map[string]*entry{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." banner without results
		}
		e := &entry{Iterations: iters}
		// Remaining fields alternate value/unit.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPerOp = val
			case "MB/s":
				e.MBPerSec = val
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = val
			}
		}
		report[stripProcs(fields[0])] = e
	}
	return report, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths intact:
// BenchmarkCrawlChaos/retries=off-8 → BenchmarkCrawlChaos/retries=off.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// marshalSorted renders the report with stable key order (encoding/json
// sorts map keys, but an explicit ordered body keeps diffs minimal and
// readable).
func marshalSorted(report map[string]*entry) ([]byte, error) {
	names := make([]string, 0, len(report))
	for name := range report {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		body, err := json.Marshal(report[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", name, body)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}
