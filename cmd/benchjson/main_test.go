package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: github.com/netmeasure/topicscope
BenchmarkPageLoad-8         	    1234	    912345 ns/op	  133299 B/op	    1551 allocs/op
BenchmarkTopicsEngineCall-8 	  500000	      2100 ns/op	    1084 B/op	      42 allocs/op
BenchmarkLoadServing-8      	       1	 512345678 ns/op	      16.000 p50_ms	     260.000 p99_ms	     270.000 p999_ms	    3900.0 req_s	 4096 B/op	  12 allocs/op
PASS
ok  	github.com/netmeasure/topicscope	3.210s
`

func parseSample(t *testing.T, text string) map[string]*entry {
	t.Helper()
	report, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return report
}

func TestParseStripsProcsAndCollectsMetrics(t *testing.T) {
	report := parseSample(t, sampleBench)
	if len(report) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(report), report)
	}
	page, ok := report["BenchmarkPageLoad"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from BenchmarkPageLoad-8")
	}
	if page.AllocsPerOp != 1551 || page.BytesPerOp != 133299 {
		t.Errorf("BenchmarkPageLoad parsed wrong: %+v", page)
	}
	loadRep, ok := report["BenchmarkLoadServing"]
	if !ok {
		t.Fatal("BenchmarkLoadServing missing")
	}
	want := map[string]float64{"p50_ms": 16, "p99_ms": 260, "p999_ms": 270, "req_s": 3900}
	for unit, v := range want {
		if got := loadRep.Metrics[unit]; got != v {
			t.Errorf("metric %s = %v, want %v", unit, got, v)
		}
	}
}

// writeBaseline marshals a report to a temp baseline file for gate().
func writeBaseline(t *testing.T, report map[string]*entry) string {
	t.Helper()
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func gateOutput(t *testing.T, report map[string]*entry, baseline string, tol float64) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := gate(report, baseline, tol, &sb)
	return sb.String(), err
}

// TestGateNewBenchmarkIsAdvisory pins the satellite behavior: a
// benchmark absent from the committed baseline must not fail the gate.
func TestGateNewBenchmarkIsAdvisory(t *testing.T) {
	baseline := parseSample(t, sampleBench)
	delete(baseline, "BenchmarkLoadServing")
	path := writeBaseline(t, baseline)

	out, err := gateOutput(t, parseSample(t, sampleBench), path, 0.2)
	if err != nil {
		t.Fatalf("new benchmark failed the gate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "new benchmark (not in baseline, advisory): BenchmarkLoadServing") {
		t.Errorf("missing advisory line:\n%s", out)
	}
	if !strings.Contains(out, "bench gate: ok") {
		t.Errorf("gate did not report ok:\n%s", out)
	}
}

func TestGateAllocsRegressionFails(t *testing.T) {
	path := writeBaseline(t, parseSample(t, sampleBench))
	run := parseSample(t, sampleBench)
	run["BenchmarkPageLoad"].AllocsPerOp = 3000 // ~2x the baseline's 1551

	out, err := gateOutput(t, run, path, 0.2)
	if err == nil {
		t.Fatalf("allocs/op regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION BenchmarkPageLoad allocs/op") {
		t.Errorf("missing regression line:\n%s", out)
	}
}

func TestGateSLOLatencyRegressionFails(t *testing.T) {
	path := writeBaseline(t, parseSample(t, sampleBench))
	run := parseSample(t, sampleBench)
	run["BenchmarkLoadServing"].Metrics["p99_ms"] = 400 // baseline 260, tol 20%

	out, err := gateOutput(t, run, path, 0.2)
	if err == nil {
		t.Fatalf("p99_ms regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION BenchmarkLoadServing p99_ms") {
		t.Errorf("missing p99_ms regression line:\n%s", out)
	}
}

func TestGateSLOThroughputRegressionFails(t *testing.T) {
	path := writeBaseline(t, parseSample(t, sampleBench))
	run := parseSample(t, sampleBench)
	run["BenchmarkLoadServing"].Metrics["req_s"] = 1000 // baseline 3900, tol 20%

	out, err := gateOutput(t, run, path, 0.2)
	if err == nil {
		t.Fatalf("req_s regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION BenchmarkLoadServing req_s") {
		t.Errorf("missing req_s regression line:\n%s", out)
	}
}

func TestGateSLOMetricMissingFromRunFails(t *testing.T) {
	path := writeBaseline(t, parseSample(t, sampleBench))
	run := parseSample(t, sampleBench)
	delete(run["BenchmarkLoadServing"].Metrics, "p999_ms")

	out, err := gateOutput(t, run, path, 0.2)
	if err == nil {
		t.Fatalf("missing SLO metric passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "p999_ms") || !strings.Contains(out, "missing from run") {
		t.Errorf("missing metric not reported:\n%s", out)
	}
}

// TestGateWithinToleranceOK: small drift in both directions passes.
func TestGateWithinToleranceOK(t *testing.T) {
	path := writeBaseline(t, parseSample(t, sampleBench))
	run := parseSample(t, sampleBench)
	run["BenchmarkLoadServing"].Metrics["p99_ms"] = 280 // +7.7%
	run["BenchmarkLoadServing"].Metrics["req_s"] = 3600 // -7.7%
	run["BenchmarkTopicsEngineCall"].AllocsPerOp = 46   // +9.5%

	out, err := gateOutput(t, run, path, 0.2)
	if err != nil {
		t.Fatalf("within-tolerance drift failed the gate: %v\n%s", err, out)
	}
}
