// Command topics-load drives the serving path with the deterministic
// open-loop load harness: seeded arrivals on the virtual clock, a
// page/topics/attest mix over the world model, latency recorded into
// exponential histograms. The report (virtual req/s, p50/p99/p999 per
// path) is byte-identical for a given seed regardless of -workers or
// GOMAXPROCS; wall-clock throughput is printed separately since it
// depends on the host.
//
//	topics-load -seed 1 -sites 1500 -requests 20000 -rate 5000
//	topics-load -seed 1 -slo-p99-ms 300 -slo-req-s 1000   # exit 1 on violation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "schedule and world-mix seed")
		sites    = flag.Int("sites", 1500, "number of ranked sites in the generated world")
		requests = flag.Int("requests", 20000, "number of requests to issue")
		rate     = flag.Float64("rate", 5000, "offered load in arrivals per virtual second")
		arrival  = flag.String("arrival", "poisson", "inter-arrival process: poisson or uniform")
		workers  = flag.Int("workers", 0, "request-executing goroutines (0 = GOMAXPROCS; report is identical for any value)")
		users    = flag.Int("users", 32, "simulated browser-engine pool answering topics calls")
		mix      = flag.String("mix", "", "page,topics,attest weights (default 60,30,10)")
		out      = flag.String("out", "", "write the report JSON here (atomic); default stdout")

		sloP50  = flag.Float64("slo-p50-ms", 0, "fail when overall p50 exceeds this many virtual ms (0 = unchecked)")
		sloP99  = flag.Float64("slo-p99-ms", 0, "fail when overall p99 exceeds this many virtual ms (0 = unchecked)")
		sloP999 = flag.Float64("slo-p999-ms", 0, "fail when overall p999 exceeds this many virtual ms (0 = unchecked)")
		sloReqS = flag.Float64("slo-req-s", 0, "fail when virtual req/s falls below this (0 = unchecked)")
	)
	flag.Parse()

	cfg := topicscope.LoadConfig{
		Seed:     *seed,
		Requests: *requests,
		Rate:     *rate,
		Arrival:  topicscope.LoadArrival(*arrival),
		Workers:  *workers,
		Users:    *users,
	}
	if *mix != "" {
		m, err := parseMix(*mix)
		if err != nil {
			fatal(err)
		}
		cfg.Mix = m
	}

	cfg.World = topicscope.GenerateWorld(topicscope.WorldConfig{Seed: *seed, NumSites: *sites})

	wallStart := time.Now()
	rep, err := topicscope.RunLoad(cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(wallStart)

	if *out != "" {
		if err := topicscope.WriteFileAtomic(*out, rep.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("report: %s\n", *out)
	} else if err := rep.WriteJSON(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wall: %d requests in %v (%.0f req/s real, %.0f req/s virtual)\n",
		rep.Requests, wall.Round(time.Millisecond), float64(rep.Requests)/wall.Seconds(), rep.ReqPerSec)

	slo := topicscope.LoadSLO{
		MaxP50:       time.Duration(*sloP50 * float64(time.Millisecond)),
		MaxP99:       time.Duration(*sloP99 * float64(time.Millisecond)),
		MaxP999:      time.Duration(*sloP999 * float64(time.Millisecond)),
		MinReqPerSec: *sloReqS,
	}
	if violations := rep.Check(slo); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "SLO violation:", v)
		}
		os.Exit(1)
	}
}

// parseMix parses "page,topics,attest" weights, e.g. "60,30,10".
func parseMix(s string) (topicscope.LoadMix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return topicscope.LoadMix{}, fmt.Errorf("topics-load: -mix wants page,topics,attest weights, got %q", s)
	}
	var w [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return topicscope.LoadMix{}, fmt.Errorf("topics-load: bad -mix weight %q", p)
		}
		w[i] = v
	}
	if w[0]+w[1]+w[2] == 0 {
		return topicscope.LoadMix{}, fmt.Errorf("topics-load: -mix weights sum to zero")
	}
	return topicscope.LoadMix{Page: w[0], Topics: w[1], Attest: w[2]}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-load:", err)
	os.Exit(1)
}
