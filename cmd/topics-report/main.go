// Command topics-report runs the whole study in one shot — generate the
// world, crawl it Before- and After-Accept, check attestations, compute
// every table and figure — and prints (or writes) the full report.
//
//	topics-report -seed 1 -sites 50000 -workers 16 -out report.txt
//
// With -live it instead renders the report from an existing (possibly
// still running) campaign journal: the checkpoint index snapshot
// (<data>.idx) is restored and only the journal tail past the committed
// offset is folded, so re-analysis reads O(tail + snapshot) bytes
// instead of the whole dataset. At the final checkpoint the output is
// byte-identical to the post-hoc report.
//
//	topics-report -live crawl.jsonl.gz -seed 1 -sites 50000
package main

import (
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netmeasure/topicscope"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed")
		sites     = flag.Int("sites", 50000, "number of ranked sites")
		workers   = flag.Int("workers", 16, "crawl parallelism")
		out       = flag.String("out", "", "write the report here instead of stdout")
		data      = flag.String("data", "", "also write the visit dataset here (JSONL)")
		jsonOut   = flag.String("json", "", "also write the machine-readable report here (JSON)")
		enforce   = flag.Bool("enforce", false, "healthy-gate ablation")
		quiet     = flag.Bool("quiet", false, "suppress progress logging")
		date      = flag.String("date", "", "virtual crawl date YYYY-MM-DD (default 2024-03-30); earlier dates see fewer active callers")
		vantage   = flag.String("vantage", "eu", "visitor jurisdiction: eu (the paper's setup) or us")
		useChaos  = flag.Bool("chaos", false, "inject the paper-calibrated fault profile during the crawl")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault-injection seed (independent of the world seed)")
		retries   = flag.Int("retries", 2, "extra attempts per navigation/fetch; 0 disables retries")
		tracePath = flag.String("trace", "", "write the campaign's span trees here (JSONL, .gz transparently)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and live campaign metrics at /__metrics on this address")
		livePath  = flag.String("live", "", "render the report from this campaign journal (index snapshot + tail fold) instead of crawling; -seed/-sites must match the campaign")
	)
	flag.Parse()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var start time.Time
	if *date != "" {
		var err error
		start, err = time.Parse("2006-01-02", *date)
		if err != nil {
			fatal(err)
		}
	}

	reg := topicscope.NewMetricsRegistry()
	if *pprofAddr != "" {
		dbg, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pprof on http://%s/debug/pprof/ (metrics at %s)\n", dbg.Addr(), topicscope.MetricsPath)
		go func() {
			srv := &http.Server{Handler: topicscope.DebugMux(reg), ReadHeaderTimeout: 10 * time.Second}
			srv.Serve(dbg) //nolint:errcheck // best-effort debug endpoint
		}()
	}
	var traceOut io.Writer
	var traceClose func() error
	if *tracePath != "" {
		raw, err := os.Create(*tracePath) //topicslint:ignore atomicwrite streaming trace sink, tailed live by topics-monitor; cannot be written atomically
		if err != nil {
			fatal(err)
		}
		traceOut, traceClose = raw, raw.Close
		if strings.HasSuffix(*tracePath, ".gz") {
			zw := gzip.NewWriter(raw)
			traceOut = zw
			traceClose = func() error {
				if err := zw.Close(); err != nil {
					return err
				}
				return raw.Close()
			}
		}
	}

	if *livePath != "" {
		if err := liveReport(ctx, *livePath, *seed, *sites, *enforce, *useChaos, *chaosSeed, *out, *jsonOut, reg); err != nil {
			fatal(err)
		}
		return
	}

	campaignRetries := *retries
	if campaignRetries <= 0 {
		campaignRetries = -1 // Campaign: negative disables, 0 = default
	}
	results, err := topicscope.Campaign{
		Seed:       *seed,
		Sites:      *sites,
		Workers:    *workers,
		Enforce:    *enforce,
		OutputPath: *data,
		Start:      start,
		Vantage:    *vantage,
		Chaos:      *useChaos,
		ChaosSeed:  *chaosSeed,
		Retries:    campaignRetries,
		Logger:     logger,
		Trace:      traceOut,
		Metrics:    reg,
	}.Run(ctx)
	if err != nil {
		fatal(err)
	}
	if traceClose != nil {
		if err := traceClose(); err != nil {
			fatal(err)
		}
		nTraces, _, _, _, _ := results.TraceSummary.Counts()
		fmt.Fprintf(os.Stderr, "traces: %s (%d records)\n", *tracePath, nTraces)
	}

	if *jsonOut != "" {
		if err := topicscope.WriteFileAtomic(*jsonOut, results.Report.WriteJSON); err != nil {
			fatal(err)
		}
	}

	// Headline figures for the summary line come straight from the
	// campaign's analysis index (results.Analysis) — already built by
	// Analyze, so these Compute* calls cost a map lookup, not a rescan.
	overview := topicscope.ComputeOverview(results.Analysis)
	text := fmt.Sprintf("topicscope report — seed=%d sites=%d enforce=%v\ncrawl: %s\nvisited: %d sites, %d third parties\n\n%s",
		*seed, *sites, *enforce, results.Stats, overview.Visited, overview.UniqueThirdParties, results.Report.Render())
	if *out == "" {
		fmt.Print(text)
		return
	}
	err = topicscope.WriteFileAtomic(*out, func(w io.Writer) error {
		_, werr := io.WriteString(w, text)
		return werr
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}

// liveReport renders the analysis report straight from a campaign
// journal: restore the checkpoint index snapshot, fold only the
// uncommitted tail, run the attestation sweep over the live index's
// caller set (the same set crawler.CallerDomains would extract from the
// collected dataset), and compute every section from the assembled
// index. At the final checkpoint the output is byte-identical to the
// post-hoc report over the finished dataset.
func liveReport(ctx context.Context, path string, seed uint64, sites int, enforce, useChaos bool, chaosSeed uint64, out, jsonOut string, reg *topicscope.MetricsRegistry) error {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: seed, NumSites: sites})
	server := topicscope.NewServer(world, nil)
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)

	in := &topicscope.AnalysisInput{Allowlist: allow, Metrics: reg}
	live, st, err := topicscope.LoadLiveAnalysisIndex(path, in)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "live: %d records (snapshot %d + tail %d), %d journal bytes read, snapshot restored: %v\n",
		live.Visits(), st.SnapshotRecords, st.TailRecords, st.BytesRead, st.SnapshotRestored)

	// The attestation sweep the campaign would run after the crawl,
	// against the same served world (and the same chaos weather — its
	// decisions are pure per-request functions, so the outcomes match).
	client := server.Client()
	if useChaos {
		topicscope.EnableChaos(client, topicscope.DefaultChaos(chaosSeed))
	}
	cr := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             client,
		ReferenceAllowlist: allow,
		Enforce:            enforce,
		Metrics:            reg,
	})
	domains := allow.Domains()
	domains = append(domains, live.Callers()...)
	recs := cr.CheckAttestations(ctx, domains)
	in.Attestations = topicscope.AttestationIndex(recs)

	topicscope.AdoptAnalysisIndex(in, live.Snapshot(in))
	report := topicscope.Analyze(in)

	if jsonOut != "" {
		if err := topicscope.WriteFileAtomic(jsonOut, report.WriteJSON); err != nil {
			return err
		}
	}
	text := report.Render()
	if out == "" {
		fmt.Print(text)
		return nil
	}
	if err := topicscope.WriteFileAtomic(out, func(w io.Writer) error {
		_, werr := io.WriteString(w, text)
		return werr
	}); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topics-report:", err)
	os.Exit(1)
}
