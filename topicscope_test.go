package topicscope_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/netmeasure/topicscope"
)

func TestCampaignEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "crawl.jsonl")
	results, err := topicscope.Campaign{
		Seed:       3,
		Sites:      800,
		Workers:    8,
		OutputPath: out,
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("Campaign.Run: %v", err)
	}
	if results.Stats.Attempted != 800 {
		t.Errorf("attempted = %d", results.Stats.Attempted)
	}
	if results.Report == nil || results.Report.Table1.Allowed != 193 {
		t.Errorf("report incomplete: %+v", results.Report)
	}
	text := results.Report.Render()
	for _, section := range []string{"Table 1", "Figure 2", "Figure 3", "Figure 5", "Figure 6", "Figure 7", "§4", "§3"} {
		if !strings.Contains(text, section) {
			t.Errorf("report missing %q", section)
		}
	}

	// The streamed dataset round-trips and matches the in-memory copy.
	loaded, err := topicscope.LoadDataset(out)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if loaded.Len() != results.Data.Len() {
		t.Errorf("streamed %d records, collected %d", loaded.Len(), results.Data.Len())
	}
}

func TestCampaignEnforceAblation(t *testing.T) {
	results, err := topicscope.Campaign{Seed: 3, Sites: 400, Workers: 8, Enforce: true}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t1 := results.Report.Table1
	if t1.AANotAllowed != 0 || t1.BANotAllowed != 0 {
		t.Errorf("healthy gate must suppress anomalous callers: %+v", t1)
	}
}

func TestCampaignCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (topicscope.Campaign{Seed: 1, Sites: 200}).Run(ctx); err == nil {
		t.Error("cancelled campaign succeeded")
	}
}

func TestFacadeArtifacts(t *testing.T) {
	dir := t.TempDir()

	// Allow-list round trip through the façade.
	list := topicscope.NewAllowlist("criteo.com", "teads.tv")
	path := filepath.Join(dir, "allow.dat")
	if err := topicscope.SaveAllowlist(path, list); err != nil {
		t.Fatal(err)
	}
	got, err := topicscope.LoadAllowlist(path)
	if err != nil || got.Len() != 2 {
		t.Fatalf("LoadAllowlist: %v, %v", got, err)
	}
	gate := topicscope.NewGate(got, nil)
	if !gate.Check("criteo.com").Allowed || gate.Check("x.example").Allowed {
		t.Error("gate decisions wrong")
	}

	// Corruption flows through to the default-allow gate.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	os.WriteFile(path, raw, 0o644)
	broken, err := topicscope.LoadAllowlist(path)
	gate = topicscope.NewGate(broken, err)
	if !gate.Corrupted() || !gate.Check("x.example").Allowed {
		t.Error("corrupted database must default-allow")
	}
}

func TestFacadeEngine(t *testing.T) {
	tx := topicscope.NewTaxonomy()
	if tx.Len() < 300 {
		t.Errorf("taxonomy size %d", tx.Len())
	}
	cl := topicscope.NewClassifier(tx)
	eng := topicscope.NewEngine(tx, cl, topicscope.EngineConfig{Seed: 1, NoNoise: true})
	eng.RecordVisit("news-site.com")
	if got := eng.BrowsingTopics("adv.com", "pub.com"); len(got) != 0 {
		t.Errorf("fresh engine returned %v", got)
	}
	if topicscope.RegistrableDomain("www.foo.co.uk") != "foo.co.uk" {
		t.Error("RegistrableDomain facade broken")
	}
}

// TestReportJSON checks the machine-readable report export parses back.
func TestReportJSON(t *testing.T) {
	results, err := topicscope.Campaign{Seed: 5, Sites: 300, Workers: 8}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := results.Report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	for _, key := range []string{"Overview", "Table1", "Figure2", "Figure3", "Anomaly", "Figure5", "Figure6", "Figure7", "Enrolment", "CallTypes", "Languages"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
}

// TestTCPPipeline exercises the decomposed deployment: a real TCP
// listener serving the synthetic web (topics-serve) crawled through the
// dial-everything-to-one-address client (topics-crawl -connect).
func TestTCPPipeline(t *testing.T) {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: 21, NumSites: 250})
	server := topicscope.NewServer(world, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: server}
	go hs.Serve(ln) //nolint:errcheck // closed by Shutdown
	defer hs.Shutdown(context.Background())

	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)
	client := topicscope.NewTCPClient(world, ln.Addr().String(), 5*time.Second)
	cr := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             client,
		ReferenceAllowlist: allow,
		Workers:            8,
		Collect:            true,
	})
	res, err := cr.Run(context.Background(), world.List())
	if err != nil {
		t.Fatalf("TCP crawl: %v", err)
	}
	if res.Stats.Succeeded == 0 || res.Stats.CallsAfter == 0 {
		t.Fatalf("TCP crawl produced nothing: %s", res.Stats)
	}

	// And it must be byte-identical to an in-process crawl of the same
	// world: the transport must not affect the measurements.
	inproc := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             topicscope.NewServer(world, nil).Client(),
		ReferenceAllowlist: allow,
		Workers:            3,
		Collect:            true,
	})
	res2, err := inproc.Run(context.Background(), world.List())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Data.Visits, res2.Data.Visits) {
		t.Error("TCP and in-process crawls disagree")
	}

	// Attestation checks also work over TCP.
	recs := cr.CheckAttestations(context.Background(), []string{"criteo.com", "missing.example"})
	if len(recs) != 2 {
		t.Fatalf("attestation records: %d", len(recs))
	}
	for _, r := range recs {
		if r.Domain == "criteo.com" && !r.Attested() {
			t.Error("criteo.com not attested over TCP")
		}
	}
}

// TestHTTPSCrawl runs a whole campaign over TLS (HTTP/2 via ALPN) and
// checks the measurements match the plaintext crawl of the same world —
// the transport must be invisible to the instrumentation.
func TestHTTPSCrawl(t *testing.T) {
	world := topicscope.GenerateWorld(topicscope.WorldConfig{Seed: 23, NumSites: 200})
	server := topicscope.NewServer(world, nil)
	allow := topicscope.NewAllowlist(world.Catalog.AllowedDomains()...)

	ln, ca, err := server.ListenTLS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: server}
	go hs.Serve(ln) //nolint:errcheck // closed below
	defer hs.Close()

	secure := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             topicscope.NewTLSClient(world, ln.Addr().String(), ca, 5*time.Second),
		ReferenceAllowlist: allow,
		Workers:            8,
		Collect:            true,
		Scheme:             "https",
	})
	sres, err := secure.Run(context.Background(), world.List())
	if err != nil {
		t.Fatalf("HTTPS crawl: %v", err)
	}

	plain := topicscope.NewCrawler(topicscope.CrawlerConfig{
		Client:             server.Client(),
		ReferenceAllowlist: allow,
		Workers:            8,
		Collect:            true,
	})
	pres, err := plain.Run(context.Background(), world.List())
	if err != nil {
		t.Fatal(err)
	}

	if sres.Stats.Succeeded != pres.Stats.Succeeded ||
		sres.Stats.Accepted != pres.Stats.Accepted ||
		sres.Stats.CallsBefore != pres.Stats.CallsBefore ||
		sres.Stats.CallsAfter != pres.Stats.CallsAfter {
		t.Errorf("HTTPS and HTTP crawls disagree:\n https: %s\n http:  %s",
			sres.Stats, pres.Stats)
	}

	// Call records are identical apart from transport.
	if len(sres.Data.Visits) != len(pres.Data.Visits) {
		t.Fatalf("visit counts differ: %d vs %d", len(sres.Data.Visits), len(pres.Data.Visits))
	}
	for i := range sres.Data.Visits {
		a, b := sres.Data.Visits[i], pres.Data.Visits[i]
		if len(a.Calls) != len(b.Calls) {
			t.Fatalf("site %s: %d vs %d calls", a.Site, len(a.Calls), len(b.Calls))
		}
		for j := range a.Calls {
			ca, cb := a.Calls[j], b.Calls[j]
			if ca.Caller != cb.Caller || ca.Type != cb.Type || ca.ContextOrigin != cb.ContextOrigin {
				t.Fatalf("site %s call %d differs: %+v vs %+v", a.Site, j, ca, cb)
			}
		}
	}
}
